package ros

import (
	"strings"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
	"multiverse/internal/mem"
	"multiverse/internal/paging"
	"multiverse/internal/vfs"
)

// UnameString is the utsname banner uname(2) reports. Exported so the
// HRT-side router can mirror it and answer uname locally.
const UnameString = "Linux multiverse-ros 2.6.38"

// Syscall dispatches one system call on thread t. It is the single kernel
// entry point: the native path calls it directly, and the Multiverse
// partner thread calls it with envelopes forwarded from the HRT.
func (p *Process) Syscall(t *Thread, call linuxabi.Call) linuxabi.Result {
	start := t.Clock.Now()
	p.kern.enterKernel(t.Clock)
	p.mu.Lock()
	p.stats.Syscalls[call.Num]++
	p.mu.Unlock()

	res := p.dispatch(t, call)

	p.kern.exitKernel(t.Clock)
	p.chargeSys(t.Clock.Now() - start)
	if res.Err == linuxabi.OK {
		p.notifyMutations(call)
	}
	return res
}

// notifyMutations fires the registered mutation hooks for one successful
// call, outside every lock: the hooks are the HRT router's invalidation
// paths and take their own locks.
func (p *Process) notifyMutations(call linuxabi.Call) {
	p.mu.Lock()
	hooks := p.mutHooks
	p.mu.Unlock()
	if len(hooks) == 0 {
		return
	}
	var evs []MutationEvent
	switch call.Num {
	case linuxabi.SysWrite:
		fd := int(call.Args[0])
		evs = append(evs, MutationEvent{Kind: MutFD, FD: fd})
		if path := p.fdPath(fd); path != "" {
			evs = append(evs, MutationEvent{Kind: MutPath, Path: path})
		}
	case linuxabi.SysRead:
		evs = append(evs, MutationEvent{Kind: MutFD, FD: int(call.Args[0])})
	case linuxabi.SysLseek:
		// The position query lseek(fd, 0, SEEK_CUR) mutates nothing; any
		// other seek moves the offset.
		if call.Args[1] != 0 || call.Args[2] != linuxabi.SeekCur {
			evs = append(evs, MutationEvent{Kind: MutFD, FD: int(call.Args[0])})
		}
	case linuxabi.SysOpen:
		evs = append(evs, MutationEvent{Kind: MutPath, Path: p.resolvePath(call.Path)})
	case linuxabi.SysClose:
		evs = append(evs, MutationEvent{Kind: MutFD, FD: int(call.Args[0])})
	case linuxabi.SysBrk:
		if call.Args[0] != 0 {
			evs = append(evs, MutationEvent{Kind: MutBrk})
		}
	}
	for _, ev := range evs {
		for _, fn := range hooks {
			fn(ev)
		}
	}
}

// fdPath returns the absolute path backing fd, or "" for pathless fds
// (stdio, closed).
func (p *Process) fdPath(fd int) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, okf := p.fds[fd]; okf {
		return f.Path()
	}
	return ""
}

func (p *Process) dispatch(t *Thread, call linuxabi.Call) linuxabi.Result {
	switch call.Num {
	case linuxabi.SysRead:
		return p.sysRead(t, call)
	case linuxabi.SysWrite:
		return p.sysWrite(t, call)
	case linuxabi.SysOpen:
		return p.sysOpen(t, call)
	case linuxabi.SysClose:
		return p.sysClose(t, call)
	case linuxabi.SysStat:
		return p.sysStat(t, call)
	case linuxabi.SysFstat:
		return p.sysFstat(t, call)
	case linuxabi.SysLseek:
		return p.sysLseek(t, call)
	case linuxabi.SysMmap:
		return p.sysMmap(t, call)
	case linuxabi.SysMprotect:
		return p.sysMprotect(t, call)
	case linuxabi.SysMunmap:
		return p.sysMunmap(t, call)
	case linuxabi.SysBrk:
		return p.sysBrk(t, call)
	case linuxabi.SysRtSigaction:
		return p.sysRtSigaction(t, call)
	case linuxabi.SysPoll:
		return p.sysPoll(t, call)
	case linuxabi.SysNanosleep:
		return p.sysNanosleep(t, call)
	case linuxabi.SysClockGettime:
		return ok(uint64(t.Clock.Now().Nanoseconds()))
	case linuxabi.SysSetitimer:
		return p.sysSetitimer(t, call)
	case linuxabi.SysGetpid:
		return ok(uint64(p.pid))
	case linuxabi.SysGettimeofday:
		return ok(uint64(t.Clock.Now().Microseconds()))
	case linuxabi.SysGetrusage:
		return p.sysGetrusage(t, call)
	case linuxabi.SysGetcwd:
		return p.sysGetcwd(t, call)
	case linuxabi.SysGetdents64:
		return p.sysGetdents64(t, call)
	case linuxabi.SysUname:
		return linuxabi.Result{Ret: 0, Err: linuxabi.OK, Data: []byte(UnameString)}
	case linuxabi.SysIoctl:
		return ok(0)
	case linuxabi.SysClone:
		return p.sysClone(t, call)
	case linuxabi.SysFutex:
		return p.sysFutex(t, call)
	case linuxabi.SysExit, linuxabi.SysExitGroup:
		p.mu.Lock()
		p.exited = true
		p.exitCode = call.Args[0]
		p.mu.Unlock()
		if call.Num == linuxabi.SysExitGroup {
			p.kern.reap(p.pid)
		}
		return ok(0)
	case linuxabi.SysExecve, linuxabi.SysFork:
		// Not modelled: the workloads under study never exec/fork, and
		// the HRT side prohibits them outright (section 4.2).
		return fail(linuxabi.ENOSYS)
	default:
		return fail(linuxabi.ENOSYS)
	}
}

// VDSO services the user-mode fast calls (getpid, gettimeofday) without a
// kernel entry, for a ROS thread.
func (p *Process) VDSO(t *Thread, num linuxabi.Sysno) (uint64, linuxabi.Errno) {
	return p.VDSOAt(t.Clock, t.Core, num)
}

// VDSOAt is the core-agnostic vdso path: after a merger the same vdso page
// is callable from the HRT core too. The small cost difference between
// core classes — the ROS core's polluted TLB vs. the HRT core's sparse
// one — is what makes these two calls slightly *faster* under Multiverse
// in Figure 9.
func (p *Process) VDSOAt(clk *cycles.Clock, core machine.CoreID, num linuxabi.Sysno) (uint64, linuxabi.Errno) {
	cost := p.kern.cost
	clk.Advance(cost.VDSOCall)
	if p.kern.isROSCore(core) {
		clk.Advance(cost.VDSOPollutionROS)
	} else {
		clk.Advance(cost.VDSOPollutionHRT)
	}
	switch num {
	case linuxabi.SysGetpid:
		return uint64(p.pid), linuxabi.OK
	case linuxabi.SysGettimeofday:
		return uint64(clk.Now().Microseconds()), linuxabi.OK
	case linuxabi.SysClockGettime:
		return uint64(clk.Now().Nanoseconds()), linuxabi.OK
	default:
		return 0, linuxabi.ENOSYS
	}
}

func ok(ret uint64) linuxabi.Result { return linuxabi.Result{Ret: ret, Err: linuxabi.OK} }
func fail(e linuxabi.Errno) linuxabi.Result {
	return linuxabi.Result{Ret: ^uint64(0), Err: e}
}

// copyCost charges the user<->kernel copy of n bytes.
func (p *Process) copyCost(t *Thread, n int) {
	pages := cycles.Cycles((n + mem.PageSize - 1) / mem.PageSize)
	t.Clock.Advance(pages * p.kern.cost.MemCopyPerPage)
}

// touchRange demand-pages a user buffer the kernel is about to copy
// through (addr may be 0 when the caller carries no real address).
func (p *Process) touchRange(t *Thread, addr uint64, n int, write bool) linuxabi.Errno {
	if addr == 0 || n == 0 {
		return linuxabi.OK
	}
	for base := paging.PageBase(addr); base < addr+uint64(n); base += mem.PageSize {
		if errno := p.Touch(t, base, write); errno != linuxabi.OK {
			return errno
		}
	}
	return linuxabi.OK
}

// ---- File system calls ------------------------------------------------

func (p *Process) file(fd int) (*vfs.File, linuxabi.Errno) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f, okf := p.fds[fd]
	if !okf {
		return nil, linuxabi.EBADF
	}
	return f, linuxabi.OK
}

func (p *Process) sysOpen(t *Thread, call linuxabi.Call) linuxabi.Result {
	path := p.resolvePath(call.Path)
	f, err := p.kern.fs.Open(path, int(call.Args[1]))
	if err != nil {
		if e, isErrno := err.(linuxabi.Errno); isErrno {
			return fail(e)
		}
		return fail(linuxabi.ENOENT)
	}
	p.mu.Lock()
	fd := p.nextFd
	p.nextFd++
	p.fds[fd] = f
	p.mu.Unlock()
	t.Clock.Advance(600) // path walk + inode lookup
	return ok(uint64(fd))
}

func (p *Process) sysClose(t *Thread, call linuxabi.Call) linuxabi.Result {
	fd := int(call.Args[0])
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, okf := p.fds[fd]; !okf {
		return fail(linuxabi.EBADF)
	}
	delete(p.fds, fd)
	return ok(0)
}

func (p *Process) sysRead(t *Thread, call linuxabi.Call) linuxabi.Result {
	fd, addr, n := int(call.Args[0]), call.Args[1], int(call.Args[2])
	if fd == 0 {
		p.mu.Lock()
		take := n
		if take > len(p.stdin) {
			take = len(p.stdin)
		}
		data := p.stdin[:take]
		p.stdin = p.stdin[take:]
		p.mu.Unlock()
		p.copyCost(t, take)
		return linuxabi.Result{Ret: uint64(take), Err: linuxabi.OK, Data: data}
	}
	f, errno := p.file(fd)
	if errno != linuxabi.OK {
		return fail(errno)
	}
	if errno := p.touchRange(t, addr, n, true); errno != linuxabi.OK {
		return fail(errno)
	}
	buf := make([]byte, n)
	rn, err := f.Read(buf)
	if err != nil {
		if e, isErrno := err.(linuxabi.Errno); isErrno {
			return fail(e)
		}
		return fail(linuxabi.EBADF)
	}
	p.copyCost(t, rn)
	return linuxabi.Result{Ret: uint64(rn), Err: linuxabi.OK, Data: buf[:rn]}
}

func (p *Process) sysWrite(t *Thread, call linuxabi.Call) linuxabi.Result {
	fd, addr := int(call.Args[0]), call.Args[1]
	data := call.Data
	n := int(call.Args[2])
	if len(data) > 0 {
		n = len(data)
	}
	if errno := p.touchRange(t, addr, n, false); errno != linuxabi.OK {
		return fail(errno)
	}
	p.copyCost(t, n)
	if fd == 1 || fd == 2 {
		p.mu.Lock()
		p.stdout = append(p.stdout, data...)
		p.mu.Unlock()
		return ok(uint64(n))
	}
	f, errno := p.file(fd)
	if errno != linuxabi.OK {
		return fail(errno)
	}
	wn, err := f.Write(data)
	if err != nil {
		if e, isErrno := err.(linuxabi.Errno); isErrno {
			return fail(e)
		}
		return fail(linuxabi.EBADF)
	}
	return ok(uint64(wn))
}

func (p *Process) sysStat(t *Thread, call linuxabi.Call) linuxabi.Result {
	st, err := p.kern.fs.Stat(p.resolvePath(call.Path))
	if err != nil {
		if e, isErrno := err.(linuxabi.Errno); isErrno {
			return fail(e)
		}
		return fail(linuxabi.ENOENT)
	}
	t.Clock.Advance(500) // path walk
	return linuxabi.Result{Ret: 0, Err: linuxabi.OK, Data: linuxabi.EncodeStat(st)}
}

func (p *Process) sysFstat(t *Thread, call linuxabi.Call) linuxabi.Result {
	f, errno := p.file(int(call.Args[0]))
	if errno != linuxabi.OK {
		return fail(errno)
	}
	return linuxabi.Result{Ret: 0, Err: linuxabi.OK, Data: linuxabi.EncodeStat(f.Stat())}
}

func (p *Process) sysLseek(t *Thread, call linuxabi.Call) linuxabi.Result {
	f, errno := p.file(int(call.Args[0]))
	if errno != linuxabi.OK {
		return fail(errno)
	}
	pos, err := f.Seek(int64(call.Args[1]), int(call.Args[2]))
	if err != nil {
		if e, isErrno := err.(linuxabi.Errno); isErrno {
			return fail(e)
		}
		return fail(linuxabi.EINVAL)
	}
	return ok(uint64(pos))
}

func (p *Process) sysGetcwd(t *Thread, call linuxabi.Call) linuxabi.Result {
	p.mu.Lock()
	cwd := p.cwd
	p.mu.Unlock()
	return linuxabi.Result{Ret: uint64(len(cwd)), Err: linuxabi.OK, Data: []byte(cwd)}
}

func (p *Process) sysGetdents64(t *Thread, call linuxabi.Call) linuxabi.Result {
	f, errno := p.file(int(call.Args[0]))
	if errno != linuxabi.OK {
		return fail(errno)
	}
	names, err := p.kern.fs.ReadDir(f.Path())
	if err != nil {
		if e, isErrno := err.(linuxabi.Errno); isErrno {
			return fail(e)
		}
		return fail(linuxabi.ENOTDIR)
	}
	blob := []byte(strings.Join(names, "\x00"))
	p.copyCost(t, len(blob))
	return linuxabi.Result{Ret: uint64(len(names)), Err: linuxabi.OK, Data: blob}
}

// resolvePath makes relative paths absolute against the cwd.
func (p *Process) resolvePath(path string) string {
	if strings.HasPrefix(path, "/") {
		return path
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cwd == "/" {
		return "/" + path
	}
	return p.cwd + "/" + path
}

// ---- Memory calls ------------------------------------------------------

func (p *Process) sysMmap(t *Thread, call linuxabi.Call) linuxabi.Result {
	addr, length := call.Args[0], call.Args[1]
	prot, flags := int(call.Args[2]), int(call.Args[3])
	if length == 0 {
		return fail(linuxabi.EINVAL)
	}
	length = (length + mem.PageSize - 1) &^ uint64(mem.PageSize-1)

	p.mu.Lock()
	defer p.mu.Unlock()
	if addr == 0 || flags&linuxabi.MapFixed == 0 {
		// Bump allocation with a one-page guard gap between areas, as
		// Linux's unmapped-area search tends to produce for anonymous
		// mappings. Under deterministic arenas each thread bumps through
		// its own TID-keyed slice of the mmap region instead of racing on
		// the shared pointer.
		if p.detArenas {
			a := p.arenaFor(t.TID)
			addr = a.mmapNext
			a.mmapNext += length + mem.PageSize
		} else {
			addr = p.mmapBase
			p.mmapBase += length + mem.PageSize
		}
	}
	v := &vma{start: addr, length: length, prot: prot, pages: make(map[uint64]mem.Frame)}
	if err := p.insertVMA(v); err != linuxabi.OK {
		return fail(err)
	}
	p.bumpGen(addr, length)
	t.Clock.Advance(900) // vma allocation + rbtree insertion analogue
	return ok(addr)
}

func (p *Process) sysMunmap(t *Thread, call linuxabi.Call) linuxabi.Result {
	addr, length := call.Args[0], call.Args[1]
	if addr%mem.PageSize != 0 || length == 0 {
		return fail(linuxabi.EINVAL)
	}
	length = (length + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.splitAt(addr)
	p.splitAt(addr + length)
	kept := p.vmas[:0]
	flushed := false
	for _, v := range p.vmas {
		if v.start >= addr && v.end() <= addr+length {
			for base, f := range v.pages {
				_ = p.space.Unmap(base)
				_ = p.kern.machine.Phys.Free(f)
				p.residency--
				t.Clock.Advance(p.kern.cost.PTEWrite)
				flushed = true
			}
			continue
		}
		kept = append(kept, v)
	}
	p.vmas = append([]*vma(nil), kept...)
	if flushed {
		p.kern.machine.Core(t.Core).MMU.TLB().FlushAll()
		t.Clock.Advance(p.kern.cost.TLBFlushLocal)
	}
	p.bumpGen(addr, length)
	t.Clock.Advance(600)
	return ok(0)
}

func (p *Process) sysMprotect(t *Thread, call linuxabi.Call) linuxabi.Result {
	addr, length, prot := call.Args[0], call.Args[1], int(call.Args[2])
	if addr%mem.PageSize != 0 || length == 0 {
		return fail(linuxabi.EINVAL)
	}
	length = (length + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.splitAt(addr)
	p.splitAt(addr + length)
	tlb := p.kern.machine.Core(t.Core).MMU.TLB()
	found := false
	for _, v := range p.vmas {
		if v.start >= addr+length || v.end() <= addr {
			continue
		}
		found = true
		v.prot = prot
		for base := range v.pages {
			if err := p.space.Protect(base, protFlags(prot)); err != nil {
				return fail(linuxabi.ENOMEM)
			}
			tlb.FlushVA(base)
			t.Clock.Advance(p.kern.cost.PTEWrite)
		}
	}
	if !found {
		return fail(linuxabi.ENOMEM)
	}
	p.bumpGen(addr, length)
	t.Clock.Advance(500)
	return ok(0)
}

// splitAt splits any VMA spanning addr into two at addr. Callers hold
// p.mu.
func (p *Process) splitAt(addr uint64) {
	for i, v := range p.vmas {
		if addr <= v.start || addr >= v.end() {
			continue
		}
		left := &vma{start: v.start, length: addr - v.start, prot: v.prot, pages: make(map[uint64]mem.Frame)}
		right := &vma{start: addr, length: v.end() - addr, prot: v.prot, pages: make(map[uint64]mem.Frame)}
		for base, f := range v.pages {
			if base < addr {
				left.pages[base] = f
			} else {
				right.pages[base] = f
			}
		}
		p.vmas = append(p.vmas[:i], append([]*vma{left, right}, p.vmas[i+1:]...)...)
		return
	}
}

func (p *Process) sysBrk(t *Thread, call linuxabi.Call) linuxabi.Result {
	newBrk := call.Args[0]
	p.mu.Lock()
	defer p.mu.Unlock()
	// Under deterministic arenas each thread grows a private break inside
	// its TID-keyed slice, so concurrent brk chatter from sibling threads
	// cannot make this thread's mappings depend on arrival order.
	var a *threadArena
	base, cur := brkBase, p.brk
	if p.detArenas {
		a = p.arenaFor(t.TID)
		base, cur = a.brkBase, a.brk
	}
	if newBrk == 0 {
		return ok(cur)
	}
	if newBrk < base {
		return fail(linuxabi.EINVAL)
	}
	if newBrk > cur {
		start := (cur + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
		end := (newBrk + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
		if end > start {
			v := &vma{
				start:  start,
				length: end - start,
				prot:   linuxabi.ProtRead | linuxabi.ProtWrite,
				pages:  make(map[uint64]mem.Frame),
			}
			if err := p.insertVMA(v); err != linuxabi.OK {
				return fail(linuxabi.ENOMEM)
			}
			p.bumpGen(start, end-start)
		}
	}
	if a != nil {
		a.brk = newBrk
	} else {
		p.brk = newBrk
	}
	return ok(newBrk)
}

// ---- Signals, timers, scheduling ---------------------------------------

func (p *Process) sysRtSigaction(t *Thread, call linuxabi.Call) linuxabi.Result {
	sig := linuxabi.Signal(call.Args[0])
	handlerAddr := call.Args[1]
	flags := call.Args[2]
	if sig == linuxabi.SIGKILL {
		return fail(linuxabi.EINVAL)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	sigs := p.sigactions
	if p.detArenas {
		sigs = p.arenaFor(t.TID).sigactions
	}
	if handlerAddr == 0 {
		delete(sigs, sig)
	} else {
		sigs[sig] = sigaction{handlerAddr: handlerAddr, flags: flags}
	}
	return ok(0)
}

func (p *Process) sysPoll(t *Thread, call linuxabi.Call) linuxabi.Result {
	timeoutMs := int64(call.Args[2])
	if timeoutMs > 0 {
		p.CountVoluntaryCS()
		t.Clock.Advance(p.kern.cost.ContextSwitch)
		t.Clock.Advance(cycles.Cycles(timeoutMs) * cycles.ClockHz / 1000)
	}
	return ok(0) // nothing ready; the cooperative scheduler just wanted a tick
}

// sysNanosleep blocks the thread for the requested duration of virtual
// time (args[0] = nanoseconds), counting the voluntary context switch.
func (p *Process) sysNanosleep(t *Thread, call linuxabi.Call) linuxabi.Result {
	ns := call.Args[0]
	p.CountVoluntaryCS()
	t.Clock.Advance(p.kern.cost.ContextSwitch)
	t.Clock.Advance(cycles.Cycles(ns * (cycles.ClockHz / 1_000_000) / 1000))
	return ok(0)
}

func (p *Process) sysSetitimer(t *Thread, call linuxabi.Call) linuxabi.Result {
	which := int(call.Args[0])
	valueUsec := call.Args[1]
	intervalUsec := call.Args[2]
	var sig linuxabi.Signal
	switch which {
	case linuxabi.ITimerReal:
		sig = linuxabi.SIGALRM
	case linuxabi.ITimerVirtual:
		sig = linuxabi.SIGVTALRM
	case linuxabi.ITimerProf:
		sig = linuxabi.SIGPROF
	default:
		return fail(linuxabi.EINVAL)
	}
	toCycles := func(usec uint64) cycles.Cycles {
		return cycles.Cycles(usec * (cycles.ClockHz / 1_000_000))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	deadline, interval, tsig := &p.timerDeadline, &p.timerInterval, &p.timerSig
	if p.detArenas {
		a := p.arenaFor(t.TID)
		deadline, interval, tsig = &a.timerDeadline, &a.timerInterval, &a.timerSig
	}
	if valueUsec == 0 {
		*deadline = 0
		*interval = 0
	} else {
		*deadline = t.Clock.Now() + toCycles(valueUsec)
		*interval = toCycles(intervalUsec)
		*tsig = sig
	}
	return ok(0)
}

func (p *Process) sysGetrusage(t *Thread, call linuxabi.Call) linuxabi.Result {
	p.mu.Lock()
	st := p.stats
	p.mu.Unlock()
	p.foldHotStats(&st)
	usec := func(c cycles.Cycles) linuxabi.Timeval {
		us := int64(c.Microseconds())
		return linuxabi.Timeval{Sec: us / 1_000_000, Usec: us % 1_000_000}
	}
	ru := linuxabi.Rusage{
		UserTime:   usec(st.UserCycles),
		SysTime:    usec(st.SysCycles),
		MaxRSSKb:   st.MaxRSSPages * mem.PageSize / 1024,
		MinorFault: st.MinorFaults,
		MajorFault: st.MajorFaults,
		NVCSw:      st.VoluntaryCS,
		NIvCSw:     st.InvoluntaryCS,
	}
	return linuxabi.Result{Ret: 0, Err: linuxabi.OK, Data: linuxabi.EncodeRusage(ru)}
}

// ---- Thread calls -------------------------------------------------------

// RegisterThreadFn associates thread-entry code with an address, the way
// RegisterHandler does for signals; clone() refers to entries by address.
func (p *Process) RegisterThreadFn(addr uint64, fn func(*Thread)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.threadFns == nil {
		p.threadFns = make(map[uint64]func(*Thread))
	}
	p.threadFns[addr] = fn
}

func (p *Process) sysClone(t *Thread, call linuxabi.Call) linuxabi.Result {
	fnAddr := call.Args[0]
	p.mu.Lock()
	fn := p.threadFns[fnAddr]
	p.mu.Unlock()
	if fn == nil {
		return fail(linuxabi.EINVAL)
	}
	nt := p.NewThread(t.Core)
	nt.Start(t.Clock, fn)
	return ok(uint64(nt.TID))
}

func (p *Process) sysFutex(t *Thread, call linuxabi.Call) linuxabi.Result {
	// Minimal futex: WAIT yields (costed as a voluntary switch), WAKE is
	// a no-op because waiters here never sleep indefinitely. Enough for
	// glibc-style join loops in the model.
	p.CountVoluntaryCS()
	t.Clock.Advance(p.kern.cost.ContextSwitch)
	return ok(0)
}

// SetStdin provisions the bytes read(2) on fd 0 returns (the REPL's
// input stream).
func (p *Process) SetStdin(b []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stdin = append([]byte(nil), b...)
}

// Stdout returns the bytes the process wrote to fds 1 and 2.
func (p *Process) Stdout() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.stdout...)
}
