package ros

import (
	"testing"

	"multiverse/internal/linuxabi"
	"multiverse/internal/machine"
)

func newProc(t *testing.T, world World) (*Kernel, *Process, *Thread) {
	t.Helper()
	m, err := machine.New(machine.DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKernel(m, world, []machine.CoreID{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn("test")
	if err != nil {
		t.Fatal(err)
	}
	return k, p, p.NewThread(k.BootCore())
}

func call(num linuxabi.Sysno, args ...uint64) linuxabi.Call {
	c := linuxabi.Call{Num: num}
	copy(c.Args[:], args)
	return c
}

func TestGetpidAndTime(t *testing.T) {
	_, p, th := newProc(t, Native)
	res := p.Syscall(th, call(linuxabi.SysGetpid))
	if !res.Ok() || int(res.Ret) != p.Pid() {
		t.Errorf("getpid = %+v", res)
	}
	before := p.Syscall(th, call(linuxabi.SysGettimeofday)).Ret
	th.Clock.Advance(2_200_000) // 1 ms
	after := p.Syscall(th, call(linuxabi.SysGettimeofday)).Ret
	if after < before+999 {
		t.Errorf("gettimeofday did not advance: %d -> %d", before, after)
	}
}

func TestMmapTouchDemandPaging(t *testing.T) {
	_, p, th := newProc(t, Native)
	res := p.Syscall(th, call(linuxabi.SysMmap, 0, 8*4096,
		linuxabi.ProtRead|linuxabi.ProtWrite, linuxabi.MapPrivate|linuxabi.MapAnonymous))
	if !res.Ok() {
		t.Fatalf("mmap: %v", res.Err)
	}
	addr := res.Ret
	if p.ResidentPages() != 0 {
		t.Errorf("pages mapped eagerly: %d", p.ResidentPages())
	}
	for off := uint64(0); off < 8*4096; off += 4096 {
		if errno := p.Touch(th, addr+off, true); errno != linuxabi.OK {
			t.Fatalf("touch: %v", errno)
		}
	}
	if p.ResidentPages() != 8 {
		t.Errorf("resident = %d", p.ResidentPages())
	}
	st := p.Stats()
	if st.MinorFaults != 8 {
		t.Errorf("minor faults = %d", st.MinorFaults)
	}
	// Second touch: no new faults.
	_ = p.Touch(th, addr, false)
	if p.Stats().MinorFaults != 8 {
		t.Error("re-touch faulted")
	}
}

func TestMunmapFreesFrames(t *testing.T) {
	k, p, th := newProc(t, Native)
	res := p.Syscall(th, call(linuxabi.SysMmap, 0, 4*4096,
		linuxabi.ProtRead|linuxabi.ProtWrite, linuxabi.MapPrivate|linuxabi.MapAnonymous))
	addr := res.Ret
	for off := uint64(0); off < 4*4096; off += 4096 {
		_ = p.Touch(th, addr+off, true)
	}
	used := k.Machine().Phys.InUse()
	if r := p.Syscall(th, call(linuxabi.SysMunmap, addr, 4*4096)); !r.Ok() {
		t.Fatalf("munmap: %v", r.Err)
	}
	if got := k.Machine().Phys.InUse(); got != used-4 {
		t.Errorf("frames in use %d -> %d, want -4", used, got)
	}
	if errno := p.Touch(th, addr, false); errno == linuxabi.OK {
		t.Error("touch after munmap succeeded")
	}
	if p.ResidentPages() != 0 {
		t.Errorf("resident = %d", p.ResidentPages())
	}
}

func TestMunmapPartialSplits(t *testing.T) {
	_, p, th := newProc(t, Native)
	res := p.Syscall(th, call(linuxabi.SysMmap, 0, 4*4096,
		linuxabi.ProtRead|linuxabi.ProtWrite, linuxabi.MapPrivate|linuxabi.MapAnonymous))
	addr := res.Ret
	// Unmap the middle two pages.
	if r := p.Syscall(th, call(linuxabi.SysMunmap, addr+4096, 2*4096)); !r.Ok() {
		t.Fatalf("partial munmap: %v", r.Err)
	}
	if errno := p.Touch(th, addr, true); errno != linuxabi.OK {
		t.Errorf("first page gone: %v", errno)
	}
	if errno := p.Touch(th, addr+4096, true); errno == linuxabi.OK {
		t.Error("middle page survived")
	}
	if errno := p.Touch(th, addr+3*4096, true); errno != linuxabi.OK {
		t.Errorf("last page gone: %v", errno)
	}
}

func TestMprotectAndSIGSEGVHandler(t *testing.T) {
	_, p, th := newProc(t, Native)
	res := p.Syscall(th, call(linuxabi.SysMmap, 0, 4096,
		linuxabi.ProtRead|linuxabi.ProtWrite, linuxabi.MapPrivate|linuxabi.MapAnonymous))
	addr := res.Ret
	if errno := p.Touch(th, addr, true); errno != linuxabi.OK {
		t.Fatal(errno)
	}

	// Drop write permission; a write without a handler must fail.
	if r := p.Syscall(th, call(linuxabi.SysMprotect, addr, 4096, linuxabi.ProtRead)); !r.Ok() {
		t.Fatalf("mprotect: %v", r.Err)
	}
	if errno := p.Touch(th, addr, true); errno != linuxabi.EFAULT {
		t.Fatalf("unhandled write fault: %v", errno)
	}
	if errno := p.Touch(th, addr, false); errno != linuxabi.OK {
		t.Errorf("read should still work: %v", errno)
	}

	// Install a GC-style handler that re-opens the page, then retry.
	var faults int
	p.RegisterHandler(0x4000_0000, func(ctx *SignalContext) {
		faults++
		if ctx.Sig != linuxabi.SIGSEGV || !ctx.Write || ctx.FaultAddr != addr {
			t.Errorf("ctx = %+v", ctx)
		}
		r := ctx.Sys(call(linuxabi.SysMprotect, addr, 4096, linuxabi.ProtRead|linuxabi.ProtWrite))
		if !r.Ok() {
			t.Errorf("handler mprotect: %v", r.Err)
		}
	})
	if r := p.Syscall(th, call(linuxabi.SysRtSigaction, uint64(linuxabi.SIGSEGV), 0x4000_0000, 0)); !r.Ok() {
		t.Fatalf("rt_sigaction: %v", r.Err)
	}
	if errno := p.Touch(th, addr, true); errno != linuxabi.OK {
		t.Fatalf("handled write fault: %v", errno)
	}
	if faults != 1 {
		t.Errorf("handler ran %d times", faults)
	}
	if p.Stats().Syscalls[linuxabi.SysRtSigreturn] != 1 {
		t.Error("rt_sigreturn not accounted")
	}
}

func TestBrkGrowsHeap(t *testing.T) {
	_, p, th := newProc(t, Native)
	cur := p.Syscall(th, call(linuxabi.SysBrk, 0)).Ret
	grown := p.Syscall(th, call(linuxabi.SysBrk, cur+64*1024))
	if !grown.Ok() || grown.Ret != cur+64*1024 {
		t.Fatalf("brk: %+v", grown)
	}
	if errno := p.Touch(th, cur+1024, true); errno != linuxabi.OK {
		t.Errorf("heap touch: %v", errno)
	}
	if r := p.Syscall(th, call(linuxabi.SysBrk, 1)); r.Ok() {
		t.Error("brk below base should fail")
	}
}

func TestFileSyscalls(t *testing.T) {
	k, p, th := newProc(t, Native)
	_ = k.FS().MkdirAll("/data")
	_ = k.FS().WriteFile("/data/f.txt", []byte("content here"))

	st := p.Syscall(th, linuxabi.Call{Num: linuxabi.SysStat, Path: "/data/f.txt"})
	if !st.Ok() {
		t.Fatalf("stat: %v", st.Err)
	}
	decoded, ok := linuxabi.DecodeStat(st.Data)
	if !ok || decoded.Size != 12 {
		t.Errorf("stat data = %+v", decoded)
	}

	o := p.Syscall(th, linuxabi.Call{Num: linuxabi.SysOpen, Path: "/data/f.txt", Args: [6]uint64{0, linuxabi.ORdonly}})
	if !o.Ok() || o.Ret < 3 {
		t.Fatalf("open: %+v", o)
	}
	r := p.Syscall(th, call(linuxabi.SysRead, o.Ret, 0, 7))
	if !r.Ok() || string(r.Data) != "content" {
		t.Fatalf("read: %+v %q", r, r.Data)
	}
	// lseek back and re-read.
	if s := p.Syscall(th, call(linuxabi.SysLseek, o.Ret, 0, 0)); !s.Ok() {
		t.Fatalf("lseek: %v", s.Err)
	}
	r2 := p.Syscall(th, call(linuxabi.SysRead, o.Ret, 0, 100))
	if string(r2.Data) != "content here" {
		t.Errorf("reread = %q", r2.Data)
	}
	if c := p.Syscall(th, call(linuxabi.SysClose, o.Ret)); !c.Ok() {
		t.Fatalf("close: %v", c.Err)
	}
	if c := p.Syscall(th, call(linuxabi.SysClose, o.Ret)); c.Err != linuxabi.EBADF {
		t.Errorf("double close: %v", c.Err)
	}

	cwd := p.Syscall(th, call(linuxabi.SysGetcwd))
	if string(cwd.Data) != "/" {
		t.Errorf("getcwd = %q", cwd.Data)
	}
}

func TestWriteToStdoutCaptured(t *testing.T) {
	_, p, th := newProc(t, Native)
	res := p.Syscall(th, linuxabi.Call{Num: linuxabi.SysWrite, Args: [6]uint64{1, 0, 5}, Data: []byte("hello")})
	if !res.Ok() || res.Ret != 5 {
		t.Fatalf("write: %+v", res)
	}
	if string(p.Stdout()) != "hello" {
		t.Errorf("stdout = %q", p.Stdout())
	}
}

func TestStdinRead(t *testing.T) {
	_, p, th := newProc(t, Native)
	p.SetStdin([]byte("line1"))
	r := p.Syscall(th, call(linuxabi.SysRead, 0, 0, 3))
	if string(r.Data) != "lin" {
		t.Errorf("read1 = %q", r.Data)
	}
	r = p.Syscall(th, call(linuxabi.SysRead, 0, 0, 100))
	if string(r.Data) != "e1" {
		t.Errorf("read2 = %q", r.Data)
	}
	r = p.Syscall(th, call(linuxabi.SysRead, 0, 0, 10))
	if r.Ret != 0 {
		t.Errorf("EOF read = %d", r.Ret)
	}
}

func TestItimerDelivery(t *testing.T) {
	_, p, th := newProc(t, Native)
	var fired int
	p.RegisterHandler(0x5000_0000, func(ctx *SignalContext) {
		fired++
		if ctx.Sig != linuxabi.SIGVTALRM {
			t.Errorf("sig = %v", ctx.Sig)
		}
	})
	_ = p.Syscall(th, call(linuxabi.SysRtSigaction, uint64(linuxabi.SIGVTALRM), 0x5000_0000, 0))
	// 1 ms interval timer.
	if r := p.Syscall(th, call(linuxabi.SysSetitimer, linuxabi.ITimerVirtual, 1000, 1000)); !r.Ok() {
		t.Fatalf("setitimer: %v", r.Err)
	}
	if p.CheckTimer(th.Clock) {
		t.Error("timer fired immediately")
	}
	th.Clock.Advance(2_200_000 * 2) // 2 ms
	if !p.CheckTimer(th.Clock) {
		t.Error("expired timer did not fire")
	}
	if fired != 1 {
		t.Errorf("handler fired %d times", fired)
	}
	// Interval re-arms.
	th.Clock.Advance(2_200_000 * 2)
	if !p.CheckTimer(th.Clock) {
		t.Error("interval timer did not re-fire")
	}
	// Cancel.
	_ = p.Syscall(th, call(linuxabi.SysSetitimer, linuxabi.ITimerVirtual, 0, 0))
	th.Clock.Advance(22_000_000)
	if p.CheckTimer(th.Clock) {
		t.Error("cancelled timer fired")
	}
}

func TestGetrusage(t *testing.T) {
	_, p, th := newProc(t, Native)
	p.ChargeUser(2_200_000_0) // 10 ms user
	res := p.Syscall(th, call(linuxabi.SysGetrusage))
	ru, ok := linuxabi.DecodeRusage(res.Data)
	if !ok {
		t.Fatal("bad rusage")
	}
	if ru.UserTime.Usec+ru.UserTime.Sec*1_000_000 < 9000 {
		t.Errorf("user time = %+v", ru.UserTime)
	}
}

func TestVirtualWorldCostsMore(t *testing.T) {
	_, pn, tn := newProc(t, Native)
	_, pv, tv := newProc(t, Virtual)
	n0 := tn.Clock.Now()
	pn.Syscall(tn, call(linuxabi.SysGetpid))
	nativeCost := tn.Clock.Now() - n0
	v0 := tv.Clock.Now()
	pv.Syscall(tv, call(linuxabi.SysGetpid))
	virtCost := tv.Clock.Now() - v0
	if virtCost <= nativeCost {
		t.Errorf("virtual syscall (%d) not more expensive than native (%d)", virtCost, nativeCost)
	}
}

func TestVDSOFaster(t *testing.T) {
	_, p, th := newProc(t, Native)
	s0 := th.Clock.Now()
	p.Syscall(th, call(linuxabi.SysGetpid))
	full := th.Clock.Now() - s0
	v0 := th.Clock.Now()
	if _, errno := p.VDSO(th, linuxabi.SysGetpid); errno != linuxabi.OK {
		t.Fatal(errno)
	}
	vdso := th.Clock.Now() - v0
	if vdso >= full {
		t.Errorf("vdso (%d) not faster than syscall (%d)", vdso, full)
	}
	if _, errno := p.VDSO(th, linuxabi.SysRead); errno != linuxabi.ENOSYS {
		t.Error("vdso read should be ENOSYS")
	}
}

func TestThreadStartJoin(t *testing.T) {
	_, p, th := newProc(t, Native)
	child := p.NewThread(th.Core)
	ran := false
	child.Start(th.Clock, func(ct *Thread) {
		ct.Clock.Advance(5000)
		ran = true
		ct.Exit(9)
	})
	code := child.Join(th)
	if !ran {
		t.Error("child did not run")
	}
	if code != 9 {
		t.Errorf("exit code = %d", code)
	}
	if th.Clock.Now() < child.Clock.Now() {
		t.Error("joiner clock behind child")
	}
	if p.Stats().VoluntaryCS == 0 {
		t.Error("join did not count a voluntary switch")
	}
}

func TestCloneViaRegistry(t *testing.T) {
	_, p, th := newProc(t, Native)
	done := make(chan bool, 1)
	p.RegisterThreadFn(0x6000_0000, func(nt *Thread) { done <- true })
	res := p.Syscall(th, call(linuxabi.SysClone, 0x6000_0000))
	if !res.Ok() {
		t.Fatalf("clone: %v", res.Err)
	}
	<-done
	if res2 := p.Syscall(th, call(linuxabi.SysClone, 0xBAD)); res2.Ok() {
		t.Error("clone of unregistered fn should fail")
	}
}

func TestExitGroup(t *testing.T) {
	k, p, th := newProc(t, Native)
	p.Syscall(th, call(linuxabi.SysExitGroup, 3))
	exited, code := p.Exited()
	if !exited || code != 3 {
		t.Errorf("exit state = %v, %d", exited, code)
	}
	if _, ok := k.Process(p.Pid()); ok {
		t.Error("process not reaped")
	}
}

func TestUnimplementedSyscall(t *testing.T) {
	_, p, th := newProc(t, Native)
	if r := p.Syscall(th, call(linuxabi.SysExecve)); r.Err != linuxabi.ENOSYS {
		t.Errorf("execve: %v", r.Err)
	}
}

func TestSyscallAccounting(t *testing.T) {
	_, p, th := newProc(t, Native)
	for i := 0; i < 5; i++ {
		p.Syscall(th, call(linuxabi.SysGetpid))
	}
	st := p.Stats()
	if st.Syscalls[linuxabi.SysGetpid] != 5 {
		t.Errorf("getpid count = %d", st.Syscalls[linuxabi.SysGetpid])
	}
	if st.TotalSyscalls() != 5 {
		t.Errorf("total = %d", st.TotalSyscalls())
	}
	if st.SysCycles == 0 {
		t.Error("no system time accounted")
	}
}

func TestMaxRSSTracksPeak(t *testing.T) {
	_, p, th := newProc(t, Native)
	res := p.Syscall(th, call(linuxabi.SysMmap, 0, 10*4096,
		linuxabi.ProtRead|linuxabi.ProtWrite, linuxabi.MapPrivate|linuxabi.MapAnonymous))
	for off := uint64(0); off < 10*4096; off += 4096 {
		_ = p.Touch(th, res.Ret+off, true)
	}
	_ = p.Syscall(th, call(linuxabi.SysMunmap, res.Ret, 10*4096))
	st := p.Stats()
	if st.MaxRSSPages != 10 {
		t.Errorf("peak RSS = %d pages, want 10 (after unmap)", st.MaxRSSPages)
	}
	if st.MaxRSSKb() != 40 {
		t.Errorf("MaxRSSKb = %d", st.MaxRSSKb())
	}
}
