// Package ros models the Regular Operating System — the legacy Linux-like
// kernel that runs on the ROS partition of the HVM (or on the bare machine
// in the paper's "Native" configuration).
//
// It is a deliberately small but real kernel: processes own page tables
// built by internal/paging, memory is demand-paged out of the machine's
// physical frames, system calls are dispatched by Linux x86-64 numbers,
// signals are delivered to registered user handlers, and every interaction
// is accounted the way Figure 10's utilization table needs (system calls,
// user/system time, max resident set, page faults, context switches).
package ros

import (
	"fmt"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/machine"
	"multiverse/internal/mem"
	"multiverse/internal/vfs"
)

// World distinguishes how the ROS itself is hosted: on bare metal
// ("Native" in Figure 13) or as an HVM guest ("Virtual"), which adds
// amortized exit overheads to kernel entries and page faults.
type World int

const (
	// Native: the ROS runs on bare metal.
	Native World = iota
	// Virtual: the ROS runs as an HVM guest.
	Virtual
)

// String names the world.
func (w World) String() string {
	if w == Native {
		return "native"
	}
	return "virtual"
}

// Kernel is the ROS kernel instance.
type Kernel struct {
	machine *machine.Machine
	cost    *cycles.CostModel
	world   World
	cores   []machine.CoreID
	fs      *vfs.FS

	mu      sync.Mutex
	nextPid int
	procs   map[int]*Process
}

// NewKernel boots a ROS on the given cores of the machine. fs may be nil,
// in which case an empty filesystem is created.
func NewKernel(m *machine.Machine, world World, cores []machine.CoreID, fs *vfs.FS) (*Kernel, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("ros: kernel needs at least one core")
	}
	if fs == nil {
		fs = vfs.New()
	}
	k := &Kernel{
		machine: m,
		cost:    m.Cost,
		world:   world,
		cores:   append([]machine.CoreID(nil), cores...),
		fs:      fs,
		nextPid: 100,
		procs:   make(map[int]*Process),
	}
	return k, nil
}

// FS returns the kernel's filesystem.
func (k *Kernel) FS() *vfs.FS { return k.fs }

// World reports the hosting world.
func (k *Kernel) World() World { return k.world }

// Cost returns the cost model.
func (k *Kernel) Cost() *cycles.CostModel { return k.cost }

// Machine returns the hardware.
func (k *Kernel) Machine() *machine.Machine { return k.machine }

// Cores returns the ROS partition.
func (k *Kernel) Cores() []machine.CoreID {
	return append([]machine.CoreID(nil), k.cores...)
}

// BootCore returns the first ROS core (where processes start).
func (k *Kernel) BootCore() machine.CoreID { return k.cores[0] }

// Zone returns the NUMA zone the kernel allocates process memory from
// (local to its boot core — the HVM maps ROS memory to ROS-local zones).
func (k *Kernel) Zone() mem.NUMAZone { return k.machine.ZoneOfCore(k.cores[0]) }

// Spawn creates a process with an empty address space and a main thread on
// the boot core. name is diagnostic (the executable name).
func (k *Kernel) Spawn(name string) (*Process, error) {
	k.mu.Lock()
	pid := k.nextPid
	k.nextPid++
	k.mu.Unlock()

	p, err := newProcess(k, pid, name)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	k.procs[pid] = p
	k.mu.Unlock()

	// The boot core runs this process; load its page tables.
	core := k.machine.Core(k.BootCore())
	core.MMU.LoadCR3(p.space)
	return p, nil
}

// Process returns the process with the given pid.
func (k *Kernel) Process(pid int) (*Process, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	return p, ok
}

// reap removes an exited process.
func (k *Kernel) reap(pid int) {
	k.mu.Lock()
	delete(k.procs, pid)
	k.mu.Unlock()
}

// enterKernel charges the cost of one kernel entry (SYSCALL path),
// including the virtualization tax when running as a guest.
func (k *Kernel) enterKernel(clk *cycles.Clock) {
	clk.Advance(k.cost.SyscallEntry)
	if k.world == Virtual {
		clk.Advance(k.cost.VirtSyscallExtra)
	}
}

// exitKernel charges the SYSRET path.
func (k *Kernel) exitKernel(clk *cycles.Clock) {
	clk.Advance(k.cost.SyscallExit)
}

// ProcessGDT returns the canonical descriptor table a process runs under:
// null, kernel code/data, user code/data, and a TLS data segment. The
// partner-thread superposition mirrors this (plus the thread's FS.base)
// onto the HRT core.
func (k *Kernel) ProcessGDT() machine.GDT {
	return machine.GDT{Entries: []machine.SegmentDescriptor{
		{}, // null
		{Base: 0, Limit: ^uint32(0), DPL: 0, Code: true}, // kernel code
		{Base: 0, Limit: ^uint32(0), DPL: 0},             // kernel data
		{Base: 0, Limit: ^uint32(0), DPL: 3, Code: true}, // user code
		{Base: 0, Limit: ^uint32(0), DPL: 3},             // user data
		{Base: 0, Limit: ^uint32(0), DPL: 3},             // TLS (%fs)
	}}
}

// isROSCore reports whether a core belongs to this kernel's partition
// (vdso calls on foreign — HRT — cores see a sparser TLB).
func (k *Kernel) isROSCore(c machine.CoreID) bool {
	for _, rc := range k.cores {
		if rc == c {
			return true
		}
	}
	return false
}
