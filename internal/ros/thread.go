package ros

import (
	"fmt"
	"sync"

	"multiverse/internal/cycles"
	"multiverse/internal/machine"
)

// Thread is one ROS thread (a Linux task). Each thread owns its virtual
// clock; the goroutine running the thread's code charges work to it.
type Thread struct {
	TID    int
	Proc   *Process
	Core   machine.CoreID
	Clock  *cycles.Clock
	Stack  *machine.Stack
	FSBase uint64

	mu        sync.Mutex
	done      chan struct{}
	closeOnce sync.Once
	exit      uint64
}

// NewThread creates a thread of the process on the given core (which must
// be a ROS core). The thread starts with its own stack and a TLS base
// derived from its tid, the state the partner-thread superposition mirrors
// into the HRT.
func (p *Process) NewThread(core machine.CoreID) *Thread {
	p.mu.Lock()
	tid := p.nextTid
	p.nextTid++
	p.mu.Unlock()

	t := &Thread{
		TID:    tid,
		Proc:   p,
		Core:   core,
		Clock:  cycles.NewClock(0),
		Stack:  machine.NewStack(64 * 1024),
		FSBase: tlsBase(p.pid, tid),
		done:   make(chan struct{}),
	}
	p.mu.Lock()
	p.threads[tid] = t
	p.mu.Unlock()
	return t
}

// tlsBase fabricates a distinct, recognizable TLS address per thread.
func tlsBase(pid, tid int) uint64 {
	return 0x0000_7ffe_0000_0000 | uint64(pid)<<16 | uint64(tid)<<4
}

// finish marks the thread complete exactly once.
func (t *Thread) finish() {
	t.closeOnce.Do(func() { close(t.done) })
}

// Start runs fn on a new goroutine as this thread's code, paying thread
// creation cost on the creator's clock (clone + runqueue insertion).
func (t *Thread) Start(creator *cycles.Clock, fn func(*Thread)) {
	if creator != nil {
		creator.Advance(t.Proc.kern.cost.ROSThreadCreate)
		t.Clock.SyncTo(creator.Now())
	}
	go func() {
		defer t.finish()
		fn(t)
	}()
}

// Run executes fn synchronously as this thread (for main threads driven by
// the caller's goroutine).
func (t *Thread) Run(fn func(*Thread)) {
	fn(t)
	t.finish()
}

// Exit records the thread's exit code and marks it finished; also usable
// from inside Start/Run bodies to set the code before returning.
func (t *Thread) Exit(code uint64) {
	t.mu.Lock()
	t.exit = code
	t.mu.Unlock()
	t.finish()
}

// Join blocks the calling thread until t finishes, charging the futex-wait
// join cost and counting the voluntary context switch. It returns t's exit
// code and synchronizes the joiner's clock past t's completion time.
func (t *Thread) Join(joiner *Thread) uint64 {
	t.Proc.CountVoluntaryCS()
	joiner.Clock.Advance(t.Proc.kern.cost.ROSThreadJoin)
	<-t.done
	joiner.Clock.SyncTo(t.Clock.Now())
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exit
}

// Done exposes completion for selects in the harness.
func (t *Thread) Done() <-chan struct{} { return t.done }

// String identifies the thread in diagnostics.
func (t *Thread) String() string {
	return fmt.Sprintf("ros-thread(pid=%d tid=%d core=%d)", t.Proc.pid, t.TID, t.Core)
}
