package ros

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/mem"
	"multiverse/internal/paging"
	"multiverse/internal/vfs"
)

// vma is one virtual memory area created by mmap/brk. Pages inside it are
// demand-mapped on first touch (minor faults).
type vma struct {
	start  uint64
	length uint64
	prot   int
	pages  map[uint64]mem.Frame // page base -> backing frame
}

func (v *vma) end() uint64 { return v.start + v.length }

func (v *vma) contains(addr uint64) bool {
	return addr >= v.start && addr < v.end()
}

// allows reports whether the VMA's protections permit the access.
func (v *vma) allows(write bool) bool {
	if write {
		return v.prot&linuxabi.ProtWrite != 0
	}
	return v.prot&linuxabi.ProtRead != 0
}

// sigaction is one registered disposition.
type sigaction struct {
	handlerAddr uint64
	flags       uint64
}

// SignalContext is what a delivered signal handler sees (a trimmed
// siginfo/ucontext). Clock is the virtual clock of the context the handler
// runs on — a ROS thread natively, an HRT thread under Multiverse. For
// fault-path deliveries, Sys issues system calls in the delivering
// thread's kernel context: under Multiverse the handler runs on the ROS
// side of the execution group (the partner replicated the access), so its
// own system calls execute natively there rather than re-crossing the
// event channel the group is already converged on.
type SignalContext struct {
	Sig       linuxabi.Signal
	FaultAddr uint64 // SIGSEGV: faulting address
	Write     bool   // SIGSEGV: access was a write
	Clock     *cycles.Clock
	Sys       func(call linuxabi.Call) linuxabi.Result
}

// SignalHandlerFunc is the Go closure standing in for the handler code at
// a registered handler address.
type SignalHandlerFunc func(*SignalContext)

// Stats is the per-process accounting Figure 10 reports.
type Stats struct {
	Syscalls      map[linuxabi.Sysno]uint64
	UserCycles    cycles.Cycles
	SysCycles     cycles.Cycles
	MinorFaults   uint64
	MajorFaults   uint64
	MaxRSSPages   uint64
	VoluntaryCS   uint64
	InvoluntaryCS uint64
	SignalsSent   uint64
}

// TotalSyscalls sums the per-call counters.
func (s *Stats) TotalSyscalls() uint64 {
	var n uint64
	for _, c := range s.Syscalls {
		n += c
	}
	return n
}

// MaxRSSKb converts the peak resident set to KiB.
func (s *Stats) MaxRSSKb() uint64 { return s.MaxRSSPages * mem.PageSize / 1024 }

// Process is one ROS process.
type Process struct {
	kern *Kernel
	pid  int
	name string

	mu         sync.Mutex
	space      *paging.AddressSpace
	vmas       []*vma // sorted by start
	brk        uint64
	mmapBase   uint64
	residency  uint64 // currently mapped pages
	fds        map[int]*vfs.File
	nextFd     int
	cwd        string
	sigactions map[linuxabi.Signal]sigaction
	handlers   map[uint64]SignalHandlerFunc
	threads    map[int]*Thread
	threadFns  map[uint64]func(*Thread)
	nextTid    int
	exited     bool
	exitCode   uint64
	stdout     []byte
	stdin      []byte

	// itimer state (setitimer(ITIMER_*)): virtual deadline and interval.
	timerDeadline cycles.Cycles
	timerInterval cycles.Cycles
	timerSig      linuxabi.Signal

	// Optional fault trace, for the paper's fidelity criterion: "if we
	// collect a trace of page faults in the application running native
	// and under Multiverse, the traces should look identical"
	// (section 4.4). Under Multiverse the partner thread replicates each
	// forwarded access, so the trace records here either way.
	faultTrace    []FaultRecord
	faultTraceCap int

	// Deterministic per-thread arenas (scheduler mode): anonymous mmap and
	// brk placement derive from the calling thread's TID alone, so the
	// addresses concurrent threads get — and the page-table work those
	// addresses imply — no longer depend on goroutine scheduling order.
	detArenas bool
	arenas    map[int]*threadArena

	// mutHooks observe successful mutating syscalls (see AddMutationHook).
	mutHooks []func(MutationEvent)

	// pml4Gen is the per-slot generation stamp of the lower-half PML4: any
	// operation that can change a top-level entry (or what it governs)
	// bumps the covering slots, so an incremental merger can copy only the
	// slots that moved since its last merge.
	pml4Gen [paging.LowerHalfEntries]uint64

	stats Stats

	// Hot accounting counters: the runtime under test bumps these on
	// every compute charge and context switch, so they live off p.mu as
	// atomics; Stats and getrusage fold them into the snapshot.
	userCycles  atomic.Uint64
	sysCycles   atomic.Uint64
	voluntaryCS atomic.Uint64
	involCS     atomic.Uint64
}

// FaultRecord is one entry of the page-fault trace.
type FaultRecord struct {
	Addr  uint64
	Write bool
}

// MutationKind classifies one kernel state change that observers of
// cached system-call results (the HRT-side boundary router) care about.
type MutationKind int

const (
	// MutFD: state addressed by a file descriptor changed — a write,
	// read, or seek moved the offset or size, or a close freed the fd
	// for reuse.
	MutFD MutationKind = iota + 1
	// MutPath: the metadata of the file at an absolute path changed
	// (a write grew it, an open created or truncated it).
	MutPath
	// MutBrk: the program break moved.
	MutBrk
	// MutCwd: the working directory changed.
	MutCwd
)

// MutationEvent is one fired mutation: the kind plus whichever address
// field applies.
type MutationEvent struct {
	Kind MutationKind
	FD   int
	Path string
}

// AddMutationHook registers fn to run after every successful mutating
// system call, with one event per affected cache axis. Hooks run outside
// the process lock, on the servicing thread's goroutine.
func (p *Process) AddMutationHook(fn func(MutationEvent)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mutHooks = append(p.mutHooks, fn)
}

// EnableFaultTrace starts recording up to max kernel-handled user page
// faults.
func (p *Process) EnableFaultTrace(max int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faultTraceCap = max
	p.faultTrace = make([]FaultRecord, 0, max)
}

// FaultTrace returns a copy of the recorded trace.
func (p *Process) FaultTrace() []FaultRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FaultRecord(nil), p.faultTrace...)
}

// Fixed layout constants for the simulated process image.
const (
	brkBase  uint64 = 0x0000_0000_0120_0000 // heap starts above a nominal image
	mmapBase uint64 = 0x0000_7f00_0000_0000 // mmap region, grows upward

	// Deterministic-arena layout: each thread owns a 1 GiB slice of the
	// mmap region keyed by its TID — anonymous mappings bump through the
	// first 768 MiB, the thread's private program break through the rest.
	arenaStride uint64 = 1 << 30
	arenaBrkOff uint64 = 3 << 28
)

// threadArena is one thread's private state under deterministic arenas: a
// bump pointer for anonymous mmap, a private program break, and a private
// interval timer + signal dispositions (so concurrent engines arming their
// cooperative tick cannot clobber each other in arrival order).
type threadArena struct {
	mmapNext uint64
	brkBase  uint64
	brk      uint64

	timerDeadline cycles.Cycles
	timerInterval cycles.Cycles
	timerSig      linuxabi.Signal
	sigactions    map[linuxabi.Signal]sigaction
	handlers      map[uint64]SignalHandlerFunc
}

// EnableDeterministicArenas switches anonymous-mmap and brk placement to
// per-thread arenas derived from the calling thread's TID alone. The
// AeroKernel scheduler turns this on: with threads placed across cores and
// genuinely overlapping, address assignment must be a function of program
// structure, not of which thread's syscall won the race, or end-to-end
// virtual time stops being reproducible.
func (p *Process) EnableDeterministicArenas() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.detArenas = true
	if p.arenas == nil {
		p.arenas = make(map[int]*threadArena)
	}
}

// arenaFor returns (creating on first use) tid's arena. Caller holds p.mu.
func (p *Process) arenaFor(tid int) *threadArena {
	a := p.arenas[tid]
	if a == nil {
		base := mmapBase + uint64(tid)*arenaStride
		a = &threadArena{
			mmapNext:   base,
			brkBase:    base + arenaBrkOff,
			brk:        base + arenaBrkOff,
			sigactions: make(map[linuxabi.Signal]sigaction),
			handlers:   make(map[uint64]SignalHandlerFunc),
		}
		p.arenas[tid] = a
	}
	return a
}

func newProcess(k *Kernel, pid int, name string) (*Process, error) {
	space, err := paging.NewAddressSpace(k.machine.Phys, k.Zone(), fmt.Sprintf("%s.%d", name, pid))
	if err != nil {
		return nil, fmt.Errorf("ros: creating address space: %w", err)
	}
	p := &Process{
		kern:       k,
		pid:        pid,
		name:       name,
		space:      space,
		brk:        brkBase,
		mmapBase:   mmapBase,
		fds:        make(map[int]*vfs.File),
		nextFd:     3, // 0,1,2 reserved for stdio
		cwd:        "/",
		sigactions: make(map[linuxabi.Signal]sigaction),
		handlers:   make(map[uint64]SignalHandlerFunc),
		threads:    make(map[int]*Thread),
		nextTid:    1,
		stats:      Stats{Syscalls: make(map[linuxabi.Sysno]uint64)},
	}
	return p, nil
}

// Pid returns the process id.
func (p *Process) Pid() int { return p.pid }

// Name returns the executable name.
func (p *Process) Name() string { return p.name }

// Cwd returns the working directory (mirrored into the HRT at router
// creation).
func (p *Process) Cwd() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cwd
}

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kern }

// Space returns the process page tables (the merger reads its CR3).
func (p *Process) Space() *paging.AddressSpace {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.space
}

// CR3 returns the process's page-table root physical address.
func (p *Process) CR3() uint64 { return p.Space().CR3() }

// PML4Generations snapshots the lower-half PML4 generation stamps — the
// publication side of the incremental-merger protocol.
func (p *Process) PML4Generations() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, paging.LowerHalfEntries)
	copy(out, p.pml4Gen[:])
	return out
}

// bumpGen bumps the generation of every lower-half PML4 slot covering
// [addr, addr+length). Callers hold p.mu.
func (p *Process) bumpGen(addr, length uint64) {
	if length == 0 || !paging.IsLowerHalf(addr) {
		return
	}
	lo := paging.PML4Index(addr)
	hi := paging.PML4Index(addr + length - 1)
	for i := lo; i <= hi && i < paging.LowerHalfEntries; i++ {
		p.pml4Gen[i]++
	}
}

// Stats returns a snapshot of the accounting counters.
func (p *Process) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.stats
	out.Syscalls = make(map[linuxabi.Sysno]uint64, len(p.stats.Syscalls))
	for k, v := range p.stats.Syscalls {
		out.Syscalls[k] = v
	}
	p.foldHotStats(&out)
	return out
}

// ChargeUser adds user-mode compute time to the accounting; the runtime
// under test calls this as it works.
func (p *Process) ChargeUser(c cycles.Cycles) {
	p.userCycles.Add(uint64(c))
}

func (p *Process) chargeSys(c cycles.Cycles) {
	p.sysCycles.Add(uint64(c))
}

// CountVoluntaryCS records a voluntary context switch (blocking).
func (p *Process) CountVoluntaryCS() {
	p.voluntaryCS.Add(1)
}

// countInvoluntaryCS records a preemption (timer-driven).
func (p *Process) countInvoluntaryCS() {
	p.involCS.Add(1)
}

// foldHotStats merges the atomic accounting counters into a stats
// snapshot.
func (p *Process) foldHotStats(st *Stats) {
	st.UserCycles += cycles.Cycles(p.userCycles.Load())
	st.SysCycles += cycles.Cycles(p.sysCycles.Load())
	st.VoluntaryCS += p.voluntaryCS.Load()
	st.InvoluntaryCS += p.involCS.Load()
}

// RegisterHandler associates handler code (a Go closure) with a handler
// address in the process image, so rt_sigaction can refer to it the way
// real code refers to a function pointer.
func (p *Process) RegisterHandler(addr uint64, fn SignalHandlerFunc) {
	p.RegisterHandlerFor(0, addr, fn)
}

// RegisterHandlerFor is RegisterHandler scoped to the ROS thread doing the
// registering. Engines place their handlers at fixed image addresses, so
// under deterministic arenas — where several engines run at once — the
// address→closure table must be per-thread or concurrent engines would
// clobber each other's registrations in arrival order. tid 0 (or arenas
// off) uses the shared process table.
func (p *Process) RegisterHandlerFor(tid int, addr uint64, fn SignalHandlerFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.detArenas && tid != 0 {
		p.arenaFor(tid).handlers[addr] = fn
		return
	}
	p.handlers[addr] = fn
}

// Exited reports whether the process has exited and with what code.
func (p *Process) Exited() (bool, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited, p.exitCode
}

// ---- VMA management -------------------------------------------------

// findVMA returns the VMA containing addr.
func (p *Process) findVMA(addr uint64) *vma {
	for _, v := range p.vmas {
		if v.contains(addr) {
			return v
		}
	}
	return nil
}

// insertVMA adds a VMA keeping the list sorted; overlap is a caller bug.
func (p *Process) insertVMA(v *vma) linuxabi.Errno {
	for _, ex := range p.vmas {
		if v.start < ex.end() && ex.start < v.end() {
			return linuxabi.EEXIST
		}
	}
	p.vmas = append(p.vmas, v)
	sort.Slice(p.vmas, func(i, j int) bool { return p.vmas[i].start < p.vmas[j].start })
	return linuxabi.OK
}

// mapPage demand-maps one page of a VMA, charging frame zeroing and PTE
// installation to clk and counting a minor fault.
func (p *Process) mapPage(v *vma, base uint64, clk *cycles.Clock) linuxabi.Errno {
	f, err := p.kern.machine.Phys.Alloc(p.kern.Zone(), fmt.Sprintf("proc%d:page", p.pid))
	if err != nil {
		return linuxabi.ENOMEM
	}
	flags := uint64(paging.PteUser)
	if v.prot&linuxabi.ProtWrite != 0 {
		flags |= paging.PteWrite
	}
	// Demand-mapping the first page under an empty PML4 slot allocates the
	// PDPT, which rewrites the top-level entry — a change only visible to a
	// merged HRT after a re-merge, so it must bump the slot's generation.
	slot := paging.PML4Index(base)
	before := p.space.TopEntry(slot)
	if err := p.space.Map(base, f, flags); err != nil {
		_ = p.kern.machine.Phys.Free(f)
		return linuxabi.ENOMEM
	}
	if slot < paging.LowerHalfEntries && p.space.TopEntry(slot) != before {
		p.pml4Gen[slot]++
	}
	v.pages[base] = f
	p.residency++
	if p.residency > p.stats.MaxRSSPages {
		p.stats.MaxRSSPages = p.residency
	}
	p.stats.MinorFaults++
	clk.Advance(p.kern.cost.PageZero + p.kern.cost.PTEWrite)
	return linuxabi.OK
}

// protFlags converts mmap PROT_* bits to PTE flags.
func protFlags(prot int) uint64 {
	flags := uint64(paging.PteUser)
	if prot&linuxabi.ProtWrite != 0 {
		flags |= paging.PteWrite
	}
	return flags
}

// ResidentPages returns the current resident set in pages.
func (p *Process) ResidentPages() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.residency
}

// ---- Fault handling --------------------------------------------------

// maxFaultRetries bounds the access-retry loop; a handler that cannot make
// progress in this many rounds is broken.
const maxFaultRetries = 8

// Touch performs one user memory access at addr on behalf of thread t,
// demand-paging and delivering SIGSEGV exactly as the kernel fault path
// would. This is also the entry point for *replicated* accesses: when the
// HRT forwards a fault, the partner thread replays the access here and
// "the ROS will then handle it as it would normally" (section 3.2).
func (p *Process) Touch(t *Thread, addr uint64, write bool) linuxabi.Errno {
	core := p.kern.machine.Core(t.Core)
	for try := 0; try < maxFaultRetries; try++ {
		_, fault := core.MMU.Translate(addr, paging.Access{Write: write, User: true}, t.Clock, p.kern.cost)
		if fault == nil {
			return linuxabi.OK
		}
		if errno := p.handleFault(t, fault); errno != linuxabi.OK {
			return errno
		}
	}
	return linuxabi.EFAULT
}

// handleFault is the kernel page-fault handler: demand-map, fix
// protections changed under the VMA, or deliver SIGSEGV.
func (p *Process) handleFault(t *Thread, fault *paging.Fault) linuxabi.Errno {
	start := t.Clock.Now()
	if p.kern.world == Virtual {
		t.Clock.Advance(p.kern.cost.VirtFaultExtra)
	}
	p.mu.Lock()
	if p.faultTraceCap > 0 && len(p.faultTrace) < p.faultTraceCap {
		p.faultTrace = append(p.faultTrace, FaultRecord{Addr: paging.PageBase(fault.Addr), Write: fault.Write})
	}
	v := p.findVMA(fault.Addr)
	if v == nil || !v.allows(fault.Write) {
		// Genuine access violation: deliver SIGSEGV if a handler is
		// registered; otherwise the access fails. Under deterministic
		// arenas dispositions live with the thread that registered them.
		sigs, handlers := p.sigactions, p.handlers
		if p.detArenas {
			a := p.arenaFor(t.TID)
			sigs, handlers = a.sigactions, a.handlers
		}
		sa, ok := sigs[linuxabi.SIGSEGV]
		fn := handlers[sa.handlerAddr]
		p.mu.Unlock()
		if !ok || fn == nil {
			p.chargeSys(t.Clock.Now() - start)
			return linuxabi.EFAULT
		}
		p.deliverSignal(t.Clock, fn, &SignalContext{
			Sig:       linuxabi.SIGSEGV,
			FaultAddr: fault.Addr,
			Write:     fault.Write,
			Sys:       func(call linuxabi.Call) linuxabi.Result { return p.Syscall(t, call) },
		})
		p.chargeSys(t.Clock.Now() - start)
		return linuxabi.OK // handler ran; caller retries the access
	}

	base := paging.PageBase(fault.Addr)
	if _, mapped := v.pages[base]; !mapped {
		errno := p.mapPage(v, base, t.Clock)
		p.mu.Unlock()
		p.chargeSys(t.Clock.Now() - start)
		return errno
	}
	// Page is mapped and the VMA permits the access, but the PTE
	// disagrees (a stale protection after mprotect widened the VMA).
	// Refresh the PTE.
	if err := p.space.Protect(base, protFlags(v.prot)); err != nil {
		p.mu.Unlock()
		p.chargeSys(t.Clock.Now() - start)
		return linuxabi.EFAULT
	}
	t.Clock.Advance(p.kern.cost.PTEWrite)
	p.kern.machine.Core(t.Core).MMU.TLB().FlushVA(base)
	p.mu.Unlock()
	p.chargeSys(t.Clock.Now() - start)
	return linuxabi.OK
}

// deliverSignal runs a user signal handler on the context owning clk,
// charging delivery and the implicit rt_sigreturn on the way out (both of
// which show up in the Figure 11/12 syscall profiles).
func (p *Process) deliverSignal(clk *cycles.Clock, fn SignalHandlerFunc, ctx *SignalContext) {
	clk.Advance(p.kern.cost.ROSSignalDeliver)
	ctx.Clock = clk
	fn(ctx)
	p.mu.Lock()
	p.stats.Syscalls[linuxabi.SysRtSigreturn]++
	p.stats.SignalsSent++
	p.mu.Unlock()
	clk.Advance(p.kern.cost.ROSSignalReturn)
}

// SendSignal delivers sig to the process on the context owning clk (e.g.
// the itimer expiry path). Unhandled signals are ignored except
// SIGKILL/SIGSEGV, which fail the caller.
func (p *Process) SendSignal(clk *cycles.Clock, sig linuxabi.Signal) linuxabi.Errno {
	p.mu.Lock()
	sa, ok := p.sigactions[sig]
	fn := p.handlers[sa.handlerAddr]
	p.mu.Unlock()
	if !ok || fn == nil {
		if sig == linuxabi.SIGKILL || sig == linuxabi.SIGSEGV {
			return linuxabi.EFAULT
		}
		return linuxabi.OK
	}
	p.deliverSignal(clk, fn, &SignalContext{Sig: sig})
	return linuxabi.OK
}

// CheckTimer fires the interval timer if the context's virtual time passed
// the deadline, delivering the timer signal (the cooperative-threading
// tick Racket's runtime relies on). Returns true if it fired.
func (p *Process) CheckTimer(clk *cycles.Clock) bool {
	return p.CheckTimerFor(0, clk)
}

// CheckTimerFor is CheckTimer scoped to the ROS thread that armed the
// timer: under deterministic arenas each thread owns a private itimer and
// private dispositions, so the check must name whose timer it is polling.
// tid 0 (or arenas off) selects the shared process timer.
func (p *Process) CheckTimerFor(tid int, clk *cycles.Clock) bool {
	p.mu.Lock()
	deadline, interval, tsig := &p.timerDeadline, &p.timerInterval, &p.timerSig
	sigs, handlers := p.sigactions, p.handlers
	if p.detArenas && tid != 0 {
		a := p.arenaFor(tid)
		deadline, interval, tsig = &a.timerDeadline, &a.timerInterval, &a.timerSig
		sigs, handlers = a.sigactions, a.handlers
	}
	if *deadline == 0 || clk.Now() < *deadline {
		p.mu.Unlock()
		return false
	}
	sig := *tsig
	if *interval > 0 {
		*deadline = clk.Now() + *interval
	} else {
		*deadline = 0
	}
	sa, ok := sigs[sig]
	fn := handlers[sa.handlerAddr]
	p.mu.Unlock()
	p.countInvoluntaryCS()
	if ok && fn != nil {
		p.deliverSignal(clk, fn, &SignalContext{Sig: sig})
	}
	return true
}
