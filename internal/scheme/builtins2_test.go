package scheme_test

import (
	"testing"

	"multiverse/internal/scheme"
)

func TestExtendedBuiltins(t *testing.T) {
	eng, _ := newNativeEngine(t)
	cases := [][2]string{
		{"(sort '(3 1 2) <)", "(1 2 3)"},
		{"(sort '(3 1 2) >)", "(3 2 1)"},
		{"(sort '() <)", "()"},
		{"(list-sort-numeric '(2.5 1 3))", "(1 2.5 3)"},
		{"(string-upcase \"aBc\")", "\"ABC\""},
		{"(string-downcase \"AbC\")", "\"abc\""},
		{"(string-contains? \"hello\" \"ell\")", "#t"},
		{"(string-contains? \"hello\" \"xyz\")", "#f"},
		{"(string-split \"a,b,c\" #\\,)", "(\"a\" \"b\" \"c\")"},
		{"(string<? \"abc\" \"abd\")", "#t"},
		{"(char-alphabetic? #\\q)", "#t"},
		{"(char-alphabetic? #\\5)", "#f"},
		{"(char-numeric? #\\7)", "#t"},
		{"(char-whitespace? #\\space)", "#t"},
		{"(char-upcase #\\a)", "#\\A"},
		{"(char<? #\\a #\\b)", "#t"},
		{"(vector-copy #(1 2))", "#(1 2)"},
		{"(vector-map add1 #(1 2 3))", "#(2 3 4)"},
		{"(let ((n 0)) (vector-for-each (lambda (x) (set! n (+ n x))) #(1 2 3)) n)", "6"},
	}
	for _, c := range cases {
		evalTo(t, eng, c[0], c[1])
	}
	// sort with a failing comparator surfaces the error.
	if _, err := eng.RunString("(sort '(1 2) (lambda (a b) (car 5)))"); err == nil {
		t.Error("sort swallowed comparator error")
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	eng, sys := newNativeEngine(t)
	before := sys.Main.Clock.Now()
	evalTo(t, eng, "(sleep 5) 'ok", "ok")
	elapsedMs := (sys.Main.Clock.Now() - before).Nanoseconds() / 1e6
	if elapsedMs < 5 {
		t.Errorf("sleep advanced only %.2f ms", elapsedMs)
	}
	st := sys.Proc.Stats()
	if st.Syscalls[35] == 0 { // nanosleep
		t.Error("sleep did not go through nanosleep(2)")
	}
}

func TestMonotonicNanos(t *testing.T) {
	eng, _ := newNativeEngine(t)
	v, err := eng.RunString("(let ((a (current-monotonic-nanos))) (sleep 1) (< a (current-monotonic-nanos)))")
	if err != nil {
		t.Fatal(err)
	}
	if v != scheme.True {
		t.Error("monotonic clock did not advance")
	}
}

func TestGCStatsBuiltin(t *testing.T) {
	eng, _ := newNativeEngine(t)
	v, err := eng.RunString("(collect-garbage) (gc-stats)")
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := scheme.ListToSlice(v)
	if !ok || len(stats) != 5 {
		t.Fatalf("gc-stats = %s", scheme.WriteString(v))
	}
	if stats[0].Int < 1 {
		t.Error("collections not reported")
	}
}
