package scheme

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Reader parses s-expressions into heap objects. Parsing allocates through
// the interpreter so that program text costs heap, as it does in Racket.
type Reader struct {
	src []rune
	pos int
	in  *Interp
}

// NewReader makes a reader over src allocating in in's heap.
func NewReader(in *Interp, src string) *Reader {
	return &Reader{src: []rune(src), in: in}
}

// ReadAll parses every datum in the source.
func (r *Reader) ReadAll() ([]*Obj, error) {
	var out []*Obj
	for {
		o, err := r.Read()
		if err != nil {
			return nil, err
		}
		if o == nil {
			return out, nil
		}
		out = append(out, o)
	}
}

// Read parses one datum; nil at end of input.
func (r *Reader) Read() (*Obj, error) {
	r.skipSpace()
	if r.pos >= len(r.src) {
		return nil, nil
	}
	return r.datum()
}

func (r *Reader) skipSpace() {
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		switch {
		case unicode.IsSpace(c):
			r.pos++
		case c == ';':
			for r.pos < len(r.src) && r.src[r.pos] != '\n' {
				r.pos++
			}
		case c == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '|':
			depth := 1
			r.pos += 2
			for r.pos < len(r.src) && depth > 0 {
				if r.src[r.pos] == '|' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '#' {
					depth--
					r.pos += 2
				} else if r.src[r.pos] == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '|' {
					depth++
					r.pos += 2
				} else {
					r.pos++
				}
			}
		default:
			return
		}
	}
}

func (r *Reader) errf(format string, args ...any) error {
	return fmt.Errorf("read: %s (at offset %d)", fmt.Sprintf(format, args...), r.pos)
}

func (r *Reader) datum() (*Obj, error) {
	c := r.src[r.pos]
	switch {
	case c == '(' || c == '[':
		return r.list(closer(c))
	case c == ')' || c == ']':
		return nil, r.errf("unexpected %q", c)
	case c == '\'':
		r.pos++
		return r.wrapped("quote")
	case c == '`':
		r.pos++
		return r.wrapped("quasiquote")
	case c == ',':
		r.pos++
		if r.pos < len(r.src) && r.src[r.pos] == '@' {
			r.pos++
			return r.wrapped("unquote-splicing")
		}
		return r.wrapped("unquote")
	case c == '"':
		return r.string()
	case c == '#':
		return r.hash()
	default:
		return r.atom()
	}
}

func closer(open rune) rune {
	if open == '[' {
		return ']'
	}
	return ')'
}

func (r *Reader) wrapped(sym string) (*Obj, error) {
	r.skipSpace()
	if r.pos >= len(r.src) {
		return nil, r.errf("unexpected end after %s", sym)
	}
	d, err := r.datum()
	if err != nil {
		return nil, err
	}
	return r.in.Cons(r.in.Intern(sym), r.in.Cons(d, Nil)), nil
}

func (r *Reader) list(close rune) (*Obj, error) {
	r.pos++ // consume opener
	var items []*Obj
	var tail *Obj
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			return nil, r.errf("unterminated list")
		}
		c := r.src[r.pos]
		if c == close || c == ')' || c == ']' {
			r.pos++
			break
		}
		if c == '.' && r.pos+1 < len(r.src) && isDelim(r.src[r.pos+1]) {
			r.pos++
			t, err := r.Read()
			if err != nil {
				return nil, err
			}
			if t == nil {
				return nil, r.errf("missing datum after dot")
			}
			tail = t
			r.skipSpace()
			if r.pos >= len(r.src) || (r.src[r.pos] != close && r.src[r.pos] != ')' && r.src[r.pos] != ']') {
				return nil, r.errf("malformed dotted list")
			}
			r.pos++
			break
		}
		d, err := r.datum()
		if err != nil {
			return nil, err
		}
		items = append(items, d)
	}
	out := Nil
	if tail != nil {
		out = tail
	}
	for i := len(items) - 1; i >= 0; i-- {
		out = r.in.Cons(items[i], out)
	}
	return out, nil
}

func isDelim(c rune) bool {
	return unicode.IsSpace(c) || c == '(' || c == ')' || c == '[' || c == ']' || c == '"' || c == ';'
}

func (r *Reader) string() (*Obj, error) {
	r.pos++ // opening quote
	var b strings.Builder
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		switch c {
		case '"':
			r.pos++
			return r.in.NewString([]byte(b.String())), nil
		case '\\':
			r.pos++
			if r.pos >= len(r.src) {
				return nil, r.errf("unterminated escape")
			}
			switch e := r.src[r.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"':
				b.WriteRune(e)
			default:
				return nil, r.errf("bad escape \\%c", e)
			}
			r.pos++
		default:
			b.WriteRune(c)
			r.pos++
		}
	}
	return nil, r.errf("unterminated string")
}

func (r *Reader) hash() (*Obj, error) {
	if r.pos+1 >= len(r.src) {
		return nil, r.errf("lone #")
	}
	switch c := r.src[r.pos+1]; {
	case c == 't':
		r.pos += 2
		return True, nil
	case c == 'f':
		r.pos += 2
		return False, nil
	case c == '\\':
		r.pos += 2
		return r.char()
	case c == '(':
		r.pos++
		lst, err := r.list(')')
		if err != nil {
			return nil, err
		}
		items, _ := ListToSlice(lst)
		return r.in.NewVector(items), nil
	default:
		return nil, r.errf("unsupported # syntax #%c", c)
	}
}

var namedChars = map[string]rune{
	"space":   ' ',
	"newline": '\n',
	"tab":     '\t',
	"nul":     0,
	"return":  '\r',
}

func (r *Reader) char() (*Obj, error) {
	if r.pos >= len(r.src) {
		return nil, r.errf("unterminated character")
	}
	start := r.pos
	r.pos++
	for r.pos < len(r.src) && !isDelim(r.src[r.pos]) {
		r.pos++
	}
	name := string(r.src[start:r.pos])
	if len(name) == 1 {
		return r.in.NewChar(rune(name[0])), nil
	}
	if c, ok := namedChars[name]; ok {
		return r.in.NewChar(c), nil
	}
	return nil, r.errf("unknown character name %q", name)
}

func (r *Reader) atom() (*Obj, error) {
	start := r.pos
	for r.pos < len(r.src) && !isDelim(r.src[r.pos]) {
		r.pos++
	}
	tok := string(r.src[start:r.pos])
	if tok == "" {
		return nil, r.errf("empty token")
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return r.in.NewInt(i), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil && looksNumeric(tok) {
		return r.in.NewFloat(f), nil
	}
	return r.in.Intern(tok), nil
}

// looksNumeric guards against ParseFloat accepting symbols like "Inf".
func looksNumeric(tok string) bool {
	c := tok[0]
	return c == '+' || c == '-' || c == '.' || (c >= '0' && c <= '9')
}
