package scheme_test

import (
	"strings"
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/scheme"
)

// newNativeEngine builds an engine on a native (non-hybrid) system.
func newNativeEngine(t *testing.T) (*scheme.Engine, *core.System) {
	t.Helper()
	sys, err := core.NewSystem(nil, core.Options{AppName: "scheme-test"})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := scheme.InstallPrelude(sys.Kernel.FS()); err != nil {
		t.Fatalf("InstallPrelude: %v", err)
	}
	eng, err := scheme.NewEngine(sys.NativeEnv())
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng, sys
}

// evalTo runs src and checks the written representation of the result.
func evalTo(t *testing.T, eng *scheme.Engine, src, want string) {
	t.Helper()
	v, err := eng.RunString(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	if got := scheme.WriteString(v); got != want {
		t.Errorf("eval %q = %s, want %s", src, got, want)
	}
}

func TestEvalBasics(t *testing.T) {
	eng, _ := newNativeEngine(t)
	cases := [][2]string{
		{"(+ 1 2 3)", "6"},
		{"(* 2 3.5)", "7.0"},
		{"(- 10 4 3)", "3"},
		{"(/ 12 4)", "3"},
		{"(/ 1 2)", "0.5"},
		{"(quotient 17 5)", "3"},
		{"(remainder 17 5)", "2"},
		{"(modulo -7 3)", "2"},
		{"(if (> 3 2) 'yes 'no)", "yes"},
		{"(car '(1 2 3))", "1"},
		{"(cdr '(1 2 3))", "(2 3)"},
		{"(cons 1 2)", "(1 . 2)"},
		{"(length '(a b c d))", "4"},
		{"(append '(1 2) '(3 4) '(5))", "(1 2 3 4 5)"},
		{"(reverse '(1 2 3))", "(3 2 1)"},
		{"(let ((x 2) (y 3)) (* x y))", "6"},
		{"(let* ((x 2) (y (* x x))) y)", "4"},
		{"(letrec ((even? (lambda (n) (if (= n 0) #t (odd? (- n 1))))) (odd? (lambda (n) (if (= n 0) #f (even? (- n 1)))))) (even? 10))", "#t"},
		{"(define (fact n) (if (= n 0) 1 (* n (fact (- n 1))))) (fact 10)", "3628800"},
		{"((lambda (a . rest) (cons a rest)) 1 2 3)", "(1 2 3)"},
		{"(map (lambda (x) (* x x)) '(1 2 3 4))", "(1 4 9 16)"},
		{"(apply + 1 2 '(3 4))", "10"},
		{"(vector-ref (vector 1 2 3) 1)", "2"},
		{"(let ((v (make-vector 3 0))) (vector-set! v 1 9) (vector-ref v 1))", "9"},
		{"(string-append \"foo\" \"bar\")", "\"foobar\""},
		{"(substring \"hello\" 1 3)", "\"el\""},
		{"(string->number \"42\")", "42"},
		{"(number->string 3.5)", "\"3.5\""},
		{"(cond ((= 1 2) 'a) ((= 1 1) 'b) (else 'c))", "b"},
		{"(case 2 ((1) 'one) ((2 3) 'two-or-three) (else 'other))", "two-or-three"},
		{"(and 1 2 3)", "3"},
		{"(or #f #f 7)", "7"},
		{"(do ((i 0 (+ i 1)) (acc 0 (+ acc i))) ((= i 5) acc))", "10"},
		{"`(1 ,(+ 1 1) ,@(list 3 4))", "(1 2 3 4)"},
		{"(let loop ((i 0) (acc '())) (if (= i 3) (reverse acc) (loop (+ i 1) (cons i acc))))", "(0 1 2)"},
		{"(filter even? '(1 2 3 4 5 6))", "(2 4 6)"},
		{"(fold-left + 0 '(1 2 3 4))", "10"},
		{"(iota 4)", "(0 1 2 3)"},
		{"(expt 2 10)", "1024"},
		{"(sqrt 16.0)", "4.0"},
		{"(min 3 1 2)", "1"},
		{"(max 3 1 2)", "3"},
		{"(assq 'b '((a 1) (b 2)))", "(b 2)"},
		{"(equal? '(1 (2 3)) '(1 (2 3)))", "#t"},
		{"(eq? 'a 'a)", "#t"},
		{"(begin (define x 1) (set! x 5) x)", "5"},
	}
	for _, c := range cases {
		evalTo(t, eng, c[0], c[1])
	}
}

func TestTailCallsRunDeep(t *testing.T) {
	eng, _ := newNativeEngine(t)
	// A loop of 500k iterations would blow the Go stack without TCO.
	evalTo(t, eng,
		"(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc 1)))) (loop 500000 0)",
		"500000")
}

func TestGCCollectsAndRuns(t *testing.T) {
	eng, sys := newNativeEngine(t)
	// Allocate enough garbage to force several collections.
	evalTo(t, eng, `
		(define (churn n)
		  (if (= n 0)
		      'done
		      (begin (make-vector 100 n) (churn (- n 1)))))
		(churn 5000)`, "done")
	gc := eng.Interp().GC()
	if gc.Collections == 0 {
		t.Error("no collections ran")
	}
	st := sys.Proc.Stats()
	if st.Syscalls[9] == 0 { // mmap
		t.Error("no heap mmap traffic")
	}
	if st.Syscalls[11] == 0 { // munmap
		t.Error("no segments were ever freed")
	}
	if st.MinorFaults == 0 {
		t.Error("no demand paging happened")
	}
}

func TestGCWriteBarrierFaults(t *testing.T) {
	eng, _ := newNativeEngine(t)
	// Build a long-lived structure, force a collection (protecting its
	// segments), then mutate it: the mutation must take barrier faults.
	evalTo(t, eng, `
		(define keep (make-vector 2000 0))
		(collect-garbage)
		(let loop ((i 0))
		  (if (= i 2000) 'mutated
		      (begin (vector-set! keep i i) (loop (+ i 1)))))`,
		"mutated")
	gc := eng.Interp().GC()
	if gc.BarrierFaults == 0 {
		t.Error("mutating protected segments raised no barrier faults")
	}
	evalTo(t, eng, "(vector-ref keep 1999)", "1999")
}

func TestOutputThroughWriteSyscall(t *testing.T) {
	eng, sys := newNativeEngine(t)
	if _, err := eng.RunString(`(display "hello") (newline) (display 42) (newline)`); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := string(sys.Proc.Stdout())
	if out != "hello\n42\n" {
		t.Errorf("stdout = %q", out)
	}
	st := sys.Proc.Stats()
	if st.Syscalls[1] == 0 { // write
		t.Error("display did not go through write(2)")
	}
}

func TestREPL(t *testing.T) {
	eng, sys := newNativeEngine(t)
	sys.Proc.SetStdin([]byte("(+ 1 2)\n(define v 10)\n(* v v)\n"))
	if err := eng.REPL(); err != nil {
		t.Fatalf("REPL: %v", err)
	}
	out := string(sys.Proc.Stdout())
	if !strings.Contains(out, "> 3") || !strings.Contains(out, "> 100") {
		t.Errorf("REPL output = %q", out)
	}
}

func TestSchedulerTimerFires(t *testing.T) {
	eng, sys := newNativeEngine(t)
	evalTo(t, eng,
		"(define (spin n) (if (= n 0) 'ok (spin (- n 1)))) (spin 2000000)",
		"ok")
	if eng.Interp().TimerFires() == 0 {
		t.Error("interval timer never fired during a long computation")
	}
	st := sys.Proc.Stats()
	if st.Syscalls[38] == 0 { // setitimer
		t.Error("engine never armed the timer")
	}
}

func TestErrorsSurface(t *testing.T) {
	eng, _ := newNativeEngine(t)
	if _, err := eng.RunString("(car 5)"); err == nil {
		t.Error("car of non-pair should error")
	}
	if _, err := eng.RunString("(undefined-proc 1)"); err == nil {
		t.Error("unbound variable should error")
	}
	if _, err := eng.RunString("(error \"boom\" 42)"); err == nil {
		t.Error("(error) should error")
	}
}
