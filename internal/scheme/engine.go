package scheme

import (
	"fmt"
	"strings"

	"multiverse/internal/linuxabi"
	"multiverse/internal/vfs"
)

// Engine is the embedding shell around the interpreter — the analogue of
// the paper's port: "an instance of the Racket engine embedded into a
// simple C program", offering a REPL and a batch interface, behaving
// identically whether compiled for Linux or for HRT use.
type Engine struct {
	in *Interp
}

// CollectsDir is where the runtime's library collection lives in the
// simulated filesystem; engine startup loads it through the file system
// calls a real runtime's package management performs.
const CollectsDir = "/racket/collects"

// PreludeSource is the standard library loaded at engine startup.
const PreludeSource = `
; multiverse-scheme prelude
(define (filter pred lst)
  (cond ((null? lst) '())
        ((pred (car lst)) (cons (car lst) (filter pred (cdr lst))))
        (else (filter pred (cdr lst)))))

(define (fold-left f acc lst)
  (if (null? lst) acc (fold-left f (f acc (car lst)) (cdr lst))))

(define (fold-right f acc lst)
  (if (null? lst) acc (f (car lst) (fold-right f acc (cdr lst)))))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (list-copy lst)
  (if (null? lst) '() (cons (car lst) (list-copy (cdr lst)))))

(define (last lst)
  (if (null? (cdr lst)) (car lst) (last (cdr lst))))

(define (assert ok msg)
  (if ok #t (error "assertion failed:" msg)))
`

// listLibSource is the list-utilities collection file.
const listLibSource = `
; multiverse-scheme list library
(define (take lst n)
  (if (or (= n 0) (null? lst))
      '()
      (cons (car lst) (take (cdr lst) (- n 1)))))

(define (drop lst n)
  (if (or (= n 0) (null? lst)) lst (drop (cdr lst) (- n 1))))

(define (count pred lst)
  (let loop ((lst lst) (n 0))
    (cond ((null? lst) n)
          ((pred (car lst)) (loop (cdr lst) (+ n 1)))
          (else (loop (cdr lst) n)))))

(define (range lo hi)
  (let loop ((i (- hi 1)) (acc '()))
    (if (< i lo) acc (loop (- i 1) (cons i acc)))))

(define (flatten lst)
  (cond ((null? lst) '())
        ((pair? (car lst)) (append (flatten (car lst)) (flatten (cdr lst))))
        (else (cons (car lst) (flatten (cdr lst))))))
`

// stringLibSource is the string-utilities collection file.
const stringLibSource = `
; multiverse-scheme string library
(define (string-reverse s)
  (list->string (reverse (string->list s))))

(define (string-index s ch)
  (let ((n (string-length s)))
    (let loop ((i 0))
      (cond ((= i n) #f)
            ((char=? (string-ref s i) ch) i)
            (else (loop (+ i 1)))))))

(define (string-repeat s n)
  (if (= n 0) "" (string-append s (string-repeat s (- n 1)))))
`

// ioLibSource is the I/O-helpers collection file.
const ioLibSource = `
; multiverse-scheme io library
(define (displayln x) (display x) (newline))
(define (print-all . xs) (for-each displayln xs))
`

// InstallPrelude writes the library collection into a filesystem (done by
// whoever provisions the ROS image). Several files, like a real runtime's
// collection tree — engine startup stats/opens/reads each.
func InstallPrelude(fs *vfs.FS) error {
	if err := fs.MkdirAll(CollectsDir); err != nil {
		return err
	}
	files := map[string]string{
		"prelude.scm": PreludeSource,
		"list.scm":    listLibSource,
		"string.scm":  stringLibSource,
		"io.scm":      ioLibSource,
	}
	for name, src := range files {
		if err := fs.WriteFile(CollectsDir+"/"+name, []byte(src)); err != nil {
			return err
		}
	}
	return nil
}

// NewEngine boots the runtime: interpreter + GC + timer, then the
// filesystem-driven library load (the startup profile of Figure 11).
func NewEngine(osenv OS) (*Engine, error) {
	in, err := NewInterp(osenv)
	if err != nil {
		return nil, err
	}
	e := &Engine{in: in}
	if err := e.loadCollects(); err != nil {
		return nil, err
	}
	return e, nil
}

// Interp exposes the interpreter.
func (e *Engine) Interp() *Interp { return e.in }

// loadCollects stats the collection directory and loads every .scm file
// in it (open/read/close per file).
func (e *Engine) loadCollects() error {
	in := e.in
	res := in.Sys(linuxabi.Call{Num: linuxabi.SysStat, Path: CollectsDir})
	if !res.Ok() {
		return nil // no collections provisioned: a bare engine
	}
	ores := in.Sys(linuxabi.Call{Num: linuxabi.SysOpen, Path: CollectsDir, Args: [6]uint64{0, linuxabi.ORdonly}})
	if !ores.Ok() {
		return fmt.Errorf("scheme: open %s: %v", CollectsDir, ores.Err)
	}
	dres := in.Sys(linuxabi.Call{Num: linuxabi.SysGetdents64, Args: [6]uint64{ores.Ret}})
	_ = in.Sys(linuxabi.Call{Num: linuxabi.SysClose, Args: [6]uint64{ores.Ret}})
	if !dres.Ok() {
		return fmt.Errorf("scheme: readdir %s: %v", CollectsDir, dres.Err)
	}
	for _, name := range strings.Split(string(dres.Data), "\x00") {
		if !strings.HasSuffix(name, ".scm") {
			continue
		}
		if _, err := e.RunFile(CollectsDir + "/" + name); err != nil {
			return fmt.Errorf("scheme: loading %s: %w", name, err)
		}
	}
	return nil
}

// readFile reads a whole file through the system call interface.
func (in *Interp) readFile(path string) ([]byte, error) {
	ores := in.Sys(linuxabi.Call{Num: linuxabi.SysOpen, Path: path, Args: [6]uint64{0, linuxabi.ORdonly}})
	if !ores.Ok() {
		return nil, evalError("open %s: %v", path, ores.Err)
	}
	fd := ores.Ret
	defer in.Sys(linuxabi.Call{Num: linuxabi.SysClose, Args: [6]uint64{fd}})
	var out []byte
	for {
		rres := in.Sys(linuxabi.Call{Num: linuxabi.SysRead, Args: [6]uint64{fd, 0, 16384}})
		if !rres.Ok() {
			return nil, evalError("read %s: %v", path, rres.Err)
		}
		if rres.Ret == 0 {
			return out, nil
		}
		out = append(out, rres.Data...)
	}
}

// RunString evaluates every form in src, returning the last value.
func (e *Engine) RunString(src string) (*Obj, error) {
	in := e.in
	r := NewReader(in, src)
	out := Unspecified
	for {
		form, err := r.Read()
		if err != nil {
			return nil, err
		}
		if form == nil {
			in.FlushOut()
			return out, nil
		}
		v, err := in.Eval(form, in.global)
		if err != nil {
			in.FlushOut()
			return nil, err
		}
		out = v
	}
}

// RunFile loads and evaluates a program file — the command-line batch
// interface.
func (e *Engine) RunFile(path string) (*Obj, error) {
	// A runtime stats before opening (search paths).
	_ = e.in.Sys(linuxabi.Call{Num: linuxabi.SysStat, Path: path})
	src, err := e.in.readFile(path)
	if err != nil {
		return nil, err
	}
	return e.RunString(string(src))
}

// REPL reads forms from fd 0 until EOF, evaluating each and printing its
// value — the interactive interface through which "the user can type
// Scheme". Input arrives through read(2); results leave through write(2).
func (e *Engine) REPL() error {
	in := e.in
	var src []byte
	for {
		rres := in.Sys(linuxabi.Call{Num: linuxabi.SysRead, Args: [6]uint64{0, 0, 4096}})
		if !rres.Ok() {
			return fmt.Errorf("scheme: repl read: %v", rres.Err)
		}
		if rres.Ret == 0 {
			break // EOF
		}
		src = append(src, rres.Data...)
	}
	r := NewReader(in, string(src))
	for {
		form, err := r.Read()
		if err != nil {
			return err
		}
		if form == nil {
			break
		}
		v, err := in.Eval(form, in.global)
		if err != nil {
			in.writeOut([]byte(fmt.Sprintf("%v\n", err)))
			continue
		}
		if v != Unspecified {
			in.writeOut([]byte("> " + WriteString(v) + "\n"))
		}
	}
	in.FlushOut()
	return nil
}

// Shutdown flushes output and disarms the scheduler timer.
func (e *Engine) Shutdown() {
	e.in.FlushOut()
	e.in.schedulerActive = false
	_ = e.in.Sys(linuxabi.Call{
		Num:  linuxabi.SysSetitimer,
		Args: [6]uint64{linuxabi.ITimerVirtual, 0, 0},
	})
}
