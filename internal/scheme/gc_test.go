package scheme_test

import (
	"testing"

	"multiverse/internal/core"
	"multiverse/internal/scheme"
)

// TestGenerationalSchedule: the collector runs mostly minor collections
// with periodic majors.
func TestGenerationalSchedule(t *testing.T) {
	eng, _ := newNativeEngine(t)
	evalTo(t, eng, `
		(define (churn n)
		  (if (= n 0) 'done (begin (make-vector 200 n) (churn (- n 1)))))
		(churn 20000)`, "done")
	gc := eng.Interp().GC()
	if gc.MinorCollections == 0 || gc.MajorCollections == 0 {
		t.Fatalf("minor=%d major=%d — want both kinds", gc.MinorCollections, gc.MajorCollections)
	}
	if gc.MinorCollections < gc.MajorCollections {
		t.Errorf("minor=%d < major=%d — schedule inverted", gc.MinorCollections, gc.MajorCollections)
	}
	if gc.Collections != gc.MinorCollections+gc.MajorCollections {
		t.Error("collection counters inconsistent")
	}
}

// TestMinorGCPreservesOldToYoungPointers is the remembered-set invariant:
// a young object whose only reference lives in a mutated (dirty) old
// segment must survive minor collections — the write barrier is what
// makes that sound.
func TestMinorGCPreservesOldToYoungPointers(t *testing.T) {
	eng, _ := newNativeEngine(t)
	evalTo(t, eng, `
		; old holds slots that will be mutated after promotion
		(define old (make-vector 4 '()))
		(collect-garbage) ; promotes old's segment and protects it
		; store freshly consed (young) data into the protected old vector:
		; the write barrier fires, the segment becomes dirty
		(vector-set! old 0 (cons 111 222))
		(vector-set! old 1 (cons 333 444))
		; churn enough garbage to force several minor collections
		(define (churn n)
		  (if (= n 0) 'ok (begin (cons n n) (make-vector 64 n) (churn (- n 1)))))
		(churn 30000)
		; the young conses must have survived via the remembered set
		(+ (car (vector-ref old 0)) (cdr (vector-ref old 1)))`,
		"555")
	gc := eng.Interp().GC()
	if gc.BarrierFaults == 0 {
		t.Error("no barrier faults — the remembered set was never exercised")
	}
	if gc.MinorCollections == 0 {
		t.Error("no minor collections ran")
	}
}

// TestAKMemoryGCBehavesIdentically: the collector produces the same
// program results on the AeroKernel backend, with barrier faults resolved
// in the kernel and no ROS forwarding for heap management.
func TestAKMemoryGCBehavesIdentically(t *testing.T) {
	run := func(ak bool) (string, uint64, uint64) {
		fat, err := core.Build(core.BuildInput{
			App:        core.NewAppImage("gcak"),
			AeroKernel: core.NewAeroKernelImage(),
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(fat, core.Options{Hybrid: true, AppName: "gcak"})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.InitRuntime(); err != nil {
			t.Fatal(err)
		}
		var out string
		var barriers uint64
		if _, err := sys.RunMain(func(env core.Env) uint64 {
			eng, eerr := scheme.NewEngine(env)
			if eerr != nil {
				t.Error(eerr)
				return 1
			}
			if ak {
				if eerr := eng.EnableAKMemory(); eerr != nil {
					t.Error(eerr)
					return 1
				}
				if eng.GCBackendName() != "aerokernel" {
					t.Errorf("backend = %s", eng.GCBackendName())
				}
			}
			v, eerr := eng.RunString(`
				(define keep (make-vector 2000 0))
				(collect-garbage)
				(let loop ((i 0))
				  (if (= i 2000) 'done
				      (begin (vector-set! keep i (cons i i)) (loop (+ i 1)))))
				(define (churn n) (if (= n 0) 'ok (begin (make-vector 100 n) (churn (- n 1)))))
				(churn 8000)
				(car (vector-ref keep 1999))`)
			if eerr != nil {
				t.Error(eerr)
				return 1
			}
			out = scheme.WriteString(v)
			barriers = eng.Interp().GC().BarrierFaults
			eng.Shutdown()
			return 0
		}); err != nil {
			t.Fatal(err)
		}
		return out, barriers, sys.AK.ForwardedFaults()
	}

	legacyOut, legacyBarriers, legacyFwd := run(false)
	akOut, akBarriers, akFwd := run(true)
	if legacyOut != "1999" || akOut != "1999" {
		t.Fatalf("results: legacy %s, ak %s", legacyOut, akOut)
	}
	if akBarriers == 0 {
		t.Error("AK backend recorded no barrier faults")
	}
	if legacyBarriers == 0 {
		t.Error("legacy backend recorded no barrier faults")
	}
	// The port's point: forwarded faults nearly vanish.
	if akFwd*5 > legacyFwd {
		t.Errorf("forwarded faults: ak=%d vs legacy=%d — port ineffective", akFwd, legacyFwd)
	}
}

// TestEnableAKMemoryRequiresHRT: the capability is HRT-only.
func TestEnableAKMemoryRequiresHRT(t *testing.T) {
	eng, _ := newNativeEngine(t)
	if err := eng.EnableAKMemory(); err == nil {
		t.Error("EnableAKMemory succeeded on a native environment")
	}
}
