package scheme_test

import (
	"strings"
	"testing"
	"testing/quick"

	"multiverse/internal/core"
	"multiverse/internal/scheme"
)

func newInterp(t *testing.T) *scheme.Interp {
	t.Helper()
	sys, err := core.NewSystem(nil, core.Options{AppName: "reader-test"})
	if err != nil {
		t.Fatal(err)
	}
	in, err := scheme.NewInterp(sys.NativeEnv())
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func readOne(t *testing.T, in *scheme.Interp, src string) *scheme.Obj {
	t.Helper()
	o, err := scheme.NewReader(in, src).Read()
	if err != nil {
		t.Fatalf("read %q: %v", src, err)
	}
	return o
}

func TestReaderForms(t *testing.T) {
	in := newInterp(t)
	cases := [][2]string{
		{"42", "42"},
		{"-17", "-17"},
		{"3.25", "3.25"},
		{"-0.5", "-0.5"},
		{"#t", "#t"},
		{"#f", "#f"},
		{"foo", "foo"},
		{`"a\nb"`, `"a\nb"`},
		{"(1 2 3)", "(1 2 3)"},
		{"[1 2]", "(1 2)"},
		{"(1 . 2)", "(1 . 2)"},
		{"(1 2 . 3)", "(1 2 . 3)"},
		{"'x", "(quote x)"},
		{"`(a ,b ,@c)", "(quasiquote (a (unquote b) (unquote-splicing c)))"},
		{"#(1 2)", "#(1 2)"},
		{`#\a`, `#\a`},
		{`#\space`, `#\ `},
		{"()", "()"},
		{"( ( ) )", "(())"},
		{"; comment\n5", "5"},
		{"#| block |# 6", "6"},
		{"#| nested #| deep |# |# 7", "7"},
	}
	for _, c := range cases {
		got := scheme.WriteString(readOne(t, in, c[0]))
		if got != c[1] {
			t.Errorf("read %q = %s, want %s", c[0], got, c[1])
		}
	}
}

func TestReaderErrors(t *testing.T) {
	in := newInterp(t)
	bad := []string{
		"(1 2",
		")",
		`"unterminated`,
		"(1 . )",
		"(1 . 2 3)",
		`#\nosuchchar`,
		"#z",
		`"bad \q escape"`,
	}
	for _, src := range bad {
		if _, err := scheme.NewReader(in, src).Read(); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestReaderMultipleForms(t *testing.T) {
	in := newInterp(t)
	forms, err := scheme.NewReader(in, "1 2 (3 4)").ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(forms) != 3 {
		t.Fatalf("forms = %d", len(forms))
	}
}

func TestDisplayVsWrite(t *testing.T) {
	in := newInterp(t)
	s := in.NewString([]byte("hi\n"))
	if scheme.DisplayString(s) != "hi\n" {
		t.Errorf("display = %q", scheme.DisplayString(s))
	}
	if scheme.WriteString(s) != `"hi\n"` {
		t.Errorf("write = %q", scheme.WriteString(s))
	}
	c := in.NewChar('x')
	if scheme.DisplayString(c) != "x" || scheme.WriteString(c) != `#\x` {
		t.Error("char rendering wrong")
	}
}

func TestCyclicStructurePrintsSafely(t *testing.T) {
	in := newInterp(t)
	p := in.Cons(in.NewInt(1), scheme.Nil)
	p.Cdr = p // cycle
	s := scheme.WriteString(p)
	if !strings.Contains(s, "cycle") {
		t.Errorf("cycle rendering = %q", s)
	}
}

// Property: for arbitrary integer lists, write->read round-trips.
func TestReadWriteRoundTripProperty(t *testing.T) {
	in := newInterp(t)
	prop := func(xs []int32) bool {
		elems := make([]*scheme.Obj, len(xs))
		for i, x := range xs {
			elems[i] = in.NewInt(int64(x))
		}
		lst := in.List(elems...)
		text := scheme.WriteString(lst)
		back, err := scheme.NewReader(in, text).Read()
		if err != nil {
			return false
		}
		return scheme.WriteString(back) == text
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: arithmetic in the interpreter agrees with Go for int64 inputs
// that avoid overflow.
func TestArithmeticAgreesWithGoProperty(t *testing.T) {
	sys, err := core.NewSystem(nil, core.Options{AppName: "arith"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := scheme.NewEngine(sys.NativeEnv())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b int16) bool {
		src := "(+ (* " + scheme.WriteString(intObj(eng, int64(a))) + " " +
			scheme.WriteString(intObj(eng, int64(b))) + ") " +
			scheme.WriteString(intObj(eng, int64(a))) + ")"
		v, err := eng.RunString(src)
		if err != nil {
			return false
		}
		want := int64(a)*int64(b) + int64(a)
		return v.Kind == scheme.KInt && v.Int == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func intObj(eng *scheme.Engine, v int64) *scheme.Obj {
	return eng.Interp().NewInt(v)
}

// Property: (reverse (reverse l)) == l for arbitrary small int lists.
func TestReverseInvolutionProperty(t *testing.T) {
	sys, err := core.NewSystem(nil, core.Options{AppName: "rev"})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := scheme.NewEngine(sys.NativeEnv())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(xs []int8) bool {
		if len(xs) > 20 {
			xs = xs[:20]
		}
		var sb strings.Builder
		sb.WriteString("(equal? (reverse (reverse '(")
		for _, x := range xs {
			sb.WriteString(scheme.WriteString(eng.Interp().NewInt(int64(x))))
			sb.WriteByte(' ')
		}
		sb.WriteString("))) '(")
		for _, x := range xs {
			sb.WriteString(scheme.WriteString(eng.Interp().NewInt(int64(x))))
			sb.WriteByte(' ')
		}
		sb.WriteString("))")
		v, err := eng.RunString(sb.String())
		return err == nil && v == scheme.True
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
