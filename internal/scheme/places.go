package scheme

// Places are the runtime's message-passing parallelism (Racket's places:
// "support has been added to Racket for parallelism via futures and
// places"). Each place is a fresh interpreter instance — its own heap,
// GC, and scheduler — running on a new OS thread. Under Multiverse that
// thread is created through the pthread_create override, so every place
// becomes its own execution group: a top-level HRT thread with its own
// ROS partner.
//
// Values cross place boundaries by serialization (written representation),
// as real places marshal messages.

// PlaceSpawner launches an isolated place evaluating src on a new thread
// and returns a wait function yielding the place's final value in written
// form. The host environment (which knows how to create threads) installs
// one with SetPlaceSpawner.
type PlaceSpawner func(src string) (wait func() (string, error), err error)

// SetPlaceSpawner wires place support into the engine.
func (e *Engine) SetPlaceSpawner(ps PlaceSpawner) {
	e.in.placeSpawner = ps
	installPlaceBuiltins(e.in)
}

// AKCaller is the optional capability an execution environment exposes
// when the runtime executes inside an HRT: direct AeroKernel calls. It is
// how a hybridized runtime starts the incremental -> accelerator
// transition without leaving Scheme.
type AKCaller interface {
	AKCall(symbol string, args ...uint64) (uint64, error)
}

type placeHandle struct {
	id   int64
	wait func() (string, error)
}

func installPlaceBuiltins(in *Interp) {
	if in.places == nil {
		in.places = make(map[int64]*placeHandle)
	}
	def := func(name string, fn func(*Interp, []*Obj) (*Obj, error)) {
		b := in.alloc(KBuiltin)
		b.ext = &objExt{Name: name, Fn: fn}
		in.global.Define(in.Intern(name), b)
	}

	// (place-spawn "source") -> handle
	def("place-spawn", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("place-spawn: want a source string")
		}
		if in.placeSpawner == nil {
			return nil, evalError("place-spawn: no place support in this environment")
		}
		in.flushCompute()
		wait, err := in.placeSpawner(string(a[0].Str))
		if err != nil {
			return nil, evalError("place-spawn: %v", err)
		}
		in.nextPlace++
		h := &placeHandle{id: in.nextPlace, wait: wait}
		in.places[h.id] = h
		return in.NewInt(h.id), nil
	})

	// (place-wait handle) -> the place's final value (deserialized)
	def("place-wait", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KInt {
			return nil, evalError("place-wait: want a place handle")
		}
		h := in.places[a[0].Int]
		if h == nil {
			return nil, evalError("place-wait: unknown place %d", a[0].Int)
		}
		delete(in.places, a[0].Int)
		in.flushCompute()
		out, err := h.wait()
		if err != nil {
			return nil, evalError("place-wait: place failed: %v", err)
		}
		v, rerr := NewReader(in, out).Read()
		if rerr != nil || v == nil {
			// Not a readable datum (e.g. a procedure): hand it over as
			// a string.
			return in.NewString([]byte(out)), nil
		}
		return v, nil
	})
}

// installHRTBuiltins adds the capabilities that only exist when the
// environment is an HRT: direct AeroKernel calls. Called from NewInterp
// when the OS offers them.
func installHRTBuiltins(in *Interp, ak AKCaller) {
	b := in.alloc(KBuiltin)
	b.ext = &objExt{Name: "aerokernel-call"}
	b.ext.Fn = func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 1 || a[0].Kind != KString {
			return nil, evalError("aerokernel-call: want a symbol name string")
		}
		args := make([]uint64, 0, len(a)-1)
		for _, o := range a[1:] {
			if o.Kind != KInt {
				return nil, evalError("aerokernel-call: arguments must be integers")
			}
			args = append(args, uint64(o.Int))
		}
		in.flushCompute()
		ret, err := ak.AKCall(string(a[0].Str), args...)
		if err != nil {
			return nil, evalError("aerokernel-call: %v", err)
		}
		return in.NewInt(int64(ret)), nil
	}
	in.global.Define(in.Intern("aerokernel-call"), b)

	p := in.alloc(KBuiltin)
	p.ext = &objExt{Name: "running-as-hrt?"}
	p.ext.Fn = func(in *Interp, a []*Obj) (*Obj, error) { return True, nil }
	in.global.Define(in.Intern("running-as-hrt?"), p)
}

// installUserBuiltinFallbacks defines the non-HRT variants so programs can
// probe portably.
func installUserBuiltinFallbacks(in *Interp) {
	p := in.alloc(KBuiltin)
	p.ext = &objExt{Name: "running-as-hrt?"}
	p.ext.Fn = func(in *Interp, a []*Obj) (*Obj, error) { return False, nil }
	in.global.Define(in.Intern("running-as-hrt?"), p)
}
