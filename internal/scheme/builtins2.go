package scheme

import (
	"bytes"
	"sort"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
)

// installExtendedBuiltins adds the second tier of library procedures:
// sorting, higher-order helpers, character classification, and the
// remaining time/system calls. Split from installBuiltins only for
// organization; every interpreter gets both.
func installExtendedBuiltins(in *Interp) {
	def := func(name string, fn func(*Interp, []*Obj) (*Obj, error)) {
		b := in.alloc(KBuiltin)
		b.ext = &objExt{Name: name, Fn: fn}
		in.global.Define(in.Intern(name), b)
	}

	// (sort lst less?) — merge sort via Go's sort with comparator
	// callbacks into the interpreter. O(n log n) comparisons, each a
	// full procedure application, charged accordingly.
	def("sort", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 {
			return nil, evalError("sort: want list and comparator")
		}
		items, ok := ListToSlice(a[0])
		if !ok {
			return nil, evalError("sort: improper list")
		}
		less := a[1]
		var cbErr error
		out := append([]*Obj(nil), items...)
		sort.SliceStable(out, func(i, j int) bool {
			if cbErr != nil {
				return false
			}
			v, err := in.Apply(less, []*Obj{out[i], out[j]})
			if err != nil {
				cbErr = err
				return false
			}
			return Truthy(v)
		})
		if cbErr != nil {
			return nil, cbErr
		}
		return in.List(out...), nil
	})

	def("list-sort-numeric", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 {
			return nil, evalError("list-sort-numeric: want a list")
		}
		items, ok := ListToSlice(a[0])
		if !ok {
			return nil, evalError("list-sort-numeric: improper list")
		}
		for _, o := range items {
			if !IsNumber(o) {
				return nil, evalError("list-sort-numeric: non-number element")
			}
		}
		out := append([]*Obj(nil), items...)
		in.charge(cycles.Cycles(len(out)) * 12)
		sort.SliceStable(out, func(i, j int) bool { return AsFloat(out[i]) < AsFloat(out[j]) })
		return in.List(out...), nil
	})

	def("string-upcase", stringMap("string-upcase", func(b byte) byte {
		if b >= 'a' && b <= 'z' {
			return b - 32
		}
		return b
	}))
	def("string-downcase", stringMap("string-downcase", func(b byte) byte {
		if b >= 'A' && b <= 'Z' {
			return b + 32
		}
		return b
	}))

	def("string-contains?", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KString || a[1].Kind != KString {
			return nil, evalError("string-contains?: want 2 strings")
		}
		return Boolean(bytes.Contains(a[0].Str, a[1].Str)), nil
	})

	def("string-split", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KString || a[1].Kind != KChar {
			return nil, evalError("string-split: want string and char")
		}
		parts := bytes.Split(a[0].Str, []byte{byte(a[1].Int)})
		out := make([]*Obj, len(parts))
		for i, p := range parts {
			out[i] = in.NewString(append([]byte(nil), p...))
		}
		return in.List(out...), nil
	})

	def("string<?", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KString || a[1].Kind != KString {
			return nil, evalError("string<?: want 2 strings")
		}
		return Boolean(string(a[0].Str) < string(a[1].Str)), nil
	})

	charPred := func(name string, ok func(byte) bool) {
		def(name, func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) != 1 || a[0].Kind != KChar {
				return nil, evalError("%s: want a char", name)
			}
			return Boolean(a[0].Int >= 0 && a[0].Int < 256 && ok(byte(a[0].Int))), nil
		})
	}
	charPred("char-alphabetic?", func(b byte) bool {
		return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
	})
	charPred("char-numeric?", func(b byte) bool { return b >= '0' && b <= '9' })
	charPred("char-whitespace?", func(b byte) bool {
		return b == ' ' || b == '\t' || b == '\n' || b == '\r'
	})
	def("char-upcase", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KChar {
			return nil, evalError("char-upcase: want a char")
		}
		c := a[0].Int
		if c >= 'a' && c <= 'z' {
			return in.NewChar(rune(c - 32)), nil
		}
		return a[0], nil
	})
	def("char<?", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KChar || a[1].Kind != KChar {
			return nil, evalError("char<?: want 2 chars")
		}
		return Boolean(a[0].Int < a[1].Int), nil
	})

	def("vector-copy", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KVector {
			return nil, evalError("vector-copy: want a vector")
		}
		return in.NewVector(append([]*Obj(nil), a[0].Vec...)), nil
	})

	def("vector-map", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[1].Kind != KVector {
			return nil, evalError("vector-map: want proc and vector")
		}
		out := make([]*Obj, len(a[1].Vec))
		for i, e := range a[1].Vec {
			v, err := in.Apply(a[0], []*Obj{e})
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return in.NewVector(out), nil
	})

	def("vector-for-each", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[1].Kind != KVector {
			return nil, evalError("vector-for-each: want proc and vector")
		}
		for _, e := range a[1].Vec {
			if _, err := in.Apply(a[0], []*Obj{e}); err != nil {
				return nil, err
			}
		}
		return Unspecified, nil
	})

	// (sleep ms): nanosleep through the kernel — the caller's virtual
	// clock advances by the requested duration.
	def("sleep", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KInt || a[0].Int < 0 {
			return nil, evalError("sleep: want milliseconds")
		}
		res := in.Sys(linuxabi.Call{
			Num:  linuxabi.SysNanosleep,
			Args: [6]uint64{uint64(a[0].Int) * 1_000_000},
		})
		if !res.Ok() {
			return nil, evalError("sleep: %v", res.Err)
		}
		return Unspecified, nil
	})

	// (current-monotonic-nanos): clock_gettime(CLOCK_MONOTONIC) on the
	// vdso fast path.
	def("current-monotonic-nanos", func(in *Interp, a []*Obj) (*Obj, error) {
		in.flushCompute()
		v, errno := in.os.VDSO(linuxabi.SysClockGettime)
		if errno != linuxabi.OK {
			return nil, evalError("current-monotonic-nanos: %v", errno)
		}
		return in.NewInt(int64(v)), nil
	})

	def("gc-stats", func(in *Interp, a []*Obj) (*Obj, error) {
		g := in.gc
		return in.List(
			in.NewInt(int64(g.Collections)),
			in.NewInt(int64(g.MinorCollections)),
			in.NewInt(int64(g.MajorCollections)),
			in.NewInt(int64(g.BarrierFaults)),
			in.NewInt(int64(g.LiveSegments())),
		), nil
	})
}

func stringMap(name string, f func(byte) byte) func(*Interp, []*Obj) (*Obj, error) {
	return func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("%s: want a string", name)
		}
		b := make([]byte, len(a[0].Str))
		for i, c := range a[0].Str {
			b[i] = f(c)
		}
		in.charge(uint64AsCycles(int64(len(b))))
		return in.NewString(b), nil
	}
}
