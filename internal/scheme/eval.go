package scheme

import "fmt"

// Eval evaluates expr in env. It brackets evalCore with the frame-
// recycling sweep: frames this evaluation created (let frames, parameter
// frames) that did not escape into a closure go back on the free list
// when the evaluation finishes. The returned value cannot reference a
// released frame — only closures hold frames, and closure creation marks
// its whole environment chain escaped.
func (in *Interp) Eval(expr *Obj, env *Frame) (*Obj, error) {
	base := len(in.owned)
	v, err := in.evalCore(expr, env, base)
	if len(in.owned) > base {
		in.sweepOwned(base)
	}
	return v, err
}

// sweepOwned releases every owned frame above base. By the time it runs,
// those frames are off every live environment chain: callers' chains
// cannot reach callee-created frames (chains only link upward), and any
// frame captured by a closure was marked escaped, which releaseFrame
// respects.
func (in *Interp) sweepOwned(base int) {
	for i := base; i < len(in.owned); i++ {
		in.releaseFrame(in.owned[i])
		in.owned[i] = nil
	}
	in.owned = in.owned[:base]
}

// sweepTail runs at a tail-call transition into next: owned frames that
// are not on next's chain are already dead — recycling them here, rather
// than at Eval exit, is what lets tail-recursive loops run in constant
// frame space instead of accumulating one dead frame per iteration.
func (in *Interp) sweepTail(base int, next *Frame) {
	owned := in.owned
	keep := base
	for i := base; i < len(owned); i++ {
		f := owned[i]
		if !f.escaped {
			onChain := false
			for c := next; c != nil; c = c.parent {
				if c == f {
					onChain = true
					break
				}
			}
			if onChain {
				owned[keep] = f
				keep++
				continue
			}
			in.releaseFrame(f)
		}
		// Escaped frames drop out of owned: they can never be recycled,
		// so tracking them further is pure overhead.
	}
	for i := keep; i < len(owned); i++ {
		owned[i] = nil
	}
	in.owned = owned[:keep]
}

// evalCore is the evaluator loop, with proper tail calls: tail positions
// update expr/env and loop rather than recursing, so iterative Scheme
// (named let, do loops, tail recursion) runs in constant Go stack — the
// tail-call elimination Racket guarantees. base is the caller's owned-
// frame watermark, used by tail-transition sweeps.
func (in *Interp) evalCore(expr *Obj, env *Frame, base int) (*Obj, error) {
	for {
		in.tick()
		switch expr.Kind {
		case KSymbol:
			v, ok := env.Lookup(expr)
			if !ok {
				return nil, evalError("unbound variable %s", expr.Str)
			}
			// A closure referenced in value position can flow anywhere —
			// returned, stored, passed — so its environment chain must
			// survive the evaluation that built it. This is the one
			// producer of closure values besides makeClosure (which marks
			// at creation): combination heads bypass this case via the
			// fast path below and stay unmarked, which is what lets
			// named-let loop frames recycle.
			if v.Kind == KClosure && v.ext.Env != nil {
				markEscaped(v.ext.Env)
			}
			return v, nil
		case KPair:
			// fall through to combination handling below
		default:
			return expr, nil // self-evaluating
		}

		head := expr.Car
		if head.Kind == KSymbol && head.special != spNone {
			switch head.special {
			case spQuote:
				return expr.Cdr.Car, nil

			case spIf:
				// (if test then [else]) — a proper list of 2 or 3 forms.
				cd := expr.Cdr
				if cd.Kind != KPair || cd.Cdr.Kind != KPair ||
					!(cd.Cdr.Cdr.Kind == KNil ||
						(cd.Cdr.Cdr.Kind == KPair && cd.Cdr.Cdr.Cdr.Kind == KNil)) {
					return nil, evalError("if: malformed")
				}
				c, err := in.Eval(cd.Car, env)
				if err != nil {
					return nil, err
				}
				if Truthy(c) {
					expr = cd.Cdr.Car
				} else if cd.Cdr.Cdr.Kind == KPair {
					expr = cd.Cdr.Cdr.Car
				} else {
					return Unspecified, nil
				}
				continue

			case spDefine:
				return in.evalDefine(expr.Cdr, env)

			case spSet:
				args, ok := ListToSlice(expr.Cdr)
				if !ok || len(args) != 2 || args[0].Kind != KSymbol {
					return nil, evalError("set!: malformed")
				}
				v, err := in.Eval(args[1], env)
				if err != nil {
					return nil, err
				}
				if !env.Set(args[0], v) {
					return nil, evalError("set!: unbound variable %s", args[0].Str)
				}
				return Unspecified, nil

			case spLambda:
				return in.makeClosure(expr.Cdr, env)

			case spBegin:
				cur := expr.Cdr
				if cur.Kind == KNil {
					return Unspecified, nil
				}
				for cur.Kind == KPair && cur.Cdr.Kind == KPair {
					if _, err := in.Eval(cur.Car, env); err != nil {
						return nil, err
					}
					cur = cur.Cdr
				}
				if cur.Kind != KPair || cur.Cdr.Kind != KNil {
					return nil, evalError("begin: malformed")
				}
				expr = cur.Car
				continue

			case spLet, spLetStar, spLetrec:
				var body *Obj
				var le *Frame
				var err error
				switch head.special {
				case spLet:
					body, le, err = in.evalLet(expr.Cdr, env)
				case spLetStar:
					body, le, err = in.evalLetStar(expr.Cdr, env)
				default:
					body, le, err = in.evalLetrec(expr.Cdr, env)
				}
				if err != nil {
					return nil, err
				}
				tail, err := in.evalBodyList(body, le)
				if err != nil {
					return nil, err
				}
				if tail == nil {
					return Unspecified, nil
				}
				expr, env = tail, le
				continue

			case spCond:
				ne, done, v, err := in.evalCond(expr.Cdr, env)
				if err != nil {
					return nil, err
				}
				if done {
					return v, nil
				}
				expr = ne
				continue

			case spCase:
				ne, done, v, err := in.evalCase(expr.Cdr, env)
				if err != nil {
					return nil, err
				}
				if done {
					return v, nil
				}
				expr = ne
				continue

			case spAnd:
				cur := expr.Cdr
				if cur.Kind != KPair {
					return True, nil
				}
				for cur.Cdr.Kind == KPair {
					v, err := in.Eval(cur.Car, env)
					if err != nil {
						return nil, err
					}
					if !Truthy(v) {
						return v, nil
					}
					cur = cur.Cdr
				}
				expr = cur.Car
				continue

			case spOr:
				cur := expr.Cdr
				if cur.Kind != KPair {
					return False, nil
				}
				for cur.Cdr.Kind == KPair {
					v, err := in.Eval(cur.Car, env)
					if err != nil {
						return nil, err
					}
					if Truthy(v) {
						return v, nil
					}
					cur = cur.Cdr
				}
				expr = cur.Car
				continue

			case spWhen, spUnless:
				cur := expr.Cdr
				if cur.Kind != KPair {
					return nil, evalError("%s: malformed", head.Str)
				}
				c, err := in.Eval(cur.Car, env)
				if err != nil {
					return nil, err
				}
				hit := Truthy(c)
				if head.special == spUnless {
					hit = !hit
				}
				if !hit || cur.Cdr.Kind != KPair {
					return Unspecified, nil
				}
				cur = cur.Cdr
				for cur.Cdr.Kind == KPair {
					if _, err := in.Eval(cur.Car, env); err != nil {
						return nil, err
					}
					cur = cur.Cdr
				}
				expr = cur.Car
				continue

			case spDo:
				v, err := in.evalDo(expr.Cdr, env)
				return v, err

			case spQuasiquote:
				return in.evalQuasi(expr.Cdr.Car, env, 1)
			}
		}

		// Combination: evaluate operator and operands, then apply. The
		// operands ride the interpreter's operand stack: pushed here,
		// passed down as a sub-slice, and popped before leaving — callees
		// never retain the slice, so argument lists cost no allocation.
		// Head position: a symbol head is resolved inline — same tick,
		// same charge, but without the KSymbol value-position escape
		// marking, since evalCore consumes fn immediately and never
		// retains it. Calling a named-let loop therefore does not pin its
		// frames.
		var fn *Obj
		if head.Kind == KSymbol {
			in.tick()
			v, ok := env.Lookup(head)
			if !ok {
				return nil, evalError("unbound variable %s", head.Str)
			}
			fn = v
		} else {
			v, err := in.Eval(head, env)
			if err != nil {
				return nil, err
			}
			fn = v
		}
		abase := len(in.argStack)
		for cur := expr.Cdr; cur.Kind == KPair; cur = cur.Cdr {
			a, err := in.Eval(cur.Car, env)
			if err != nil {
				in.argStack = in.argStack[:abase]
				return nil, err
			}
			in.argStack = append(in.argStack, a)
		}
		args := in.argStack[abase:]

		switch fn.Kind {
		case KBuiltin:
			v, err := fn.ext.Fn(in, args)
			in.argStack = in.argStack[:abase]
			return v, err
		case KClosure:
			frame, err := in.bindParams(fn, args)
			in.argStack = in.argStack[:abase]
			if err != nil {
				return nil, err
			}
			if len(fn.ext.Body) == 0 {
				return Unspecified, nil
			}
			for _, e := range fn.ext.Body[:len(fn.ext.Body)-1] {
				if _, err := in.Eval(e, frame); err != nil {
					return nil, err
				}
			}
			in.sweepTail(base, frame)
			expr, env = fn.ext.Body[len(fn.ext.Body)-1], frame
			continue
		default:
			in.argStack = in.argStack[:abase]
			return nil, evalError("not a procedure: %s", WriteString(fn))
		}
	}
}

// Apply invokes a procedure from Go (builtins like map/apply use it). Not
// a tail position.
func (in *Interp) Apply(fn *Obj, args []*Obj) (*Obj, error) {
	switch fn.Kind {
	case KBuiltin:
		in.tick()
		return fn.ext.Fn(in, args)
	case KClosure:
		base := len(in.owned)
		frame, err := in.bindParams(fn, args)
		if err != nil {
			in.sweepOwned(base)
			return nil, err
		}
		var out *Obj = Unspecified
		for _, e := range fn.ext.Body {
			v, err := in.Eval(e, frame)
			if err != nil {
				in.sweepOwned(base)
				return nil, err
			}
			out = v
		}
		in.sweepOwned(base)
		return out, nil
	default:
		return nil, evalError("apply: not a procedure: %s", WriteString(fn))
	}
}

func (in *Interp) bindParams(fn *Obj, args []*Obj) (*Frame, error) {
	frame := in.newFrame(fn.ext.Env)
	in.owned = append(in.owned, frame)
	if fn.ext.Rest == nil && len(args) != len(fn.ext.Params) {
		return nil, evalError("arity: want %d args, got %d", len(fn.ext.Params), len(args))
	}
	if fn.ext.Rest != nil && len(args) < len(fn.ext.Params) {
		return nil, evalError("arity: want at least %d args, got %d", len(fn.ext.Params), len(args))
	}
	for i, p := range fn.ext.Params {
		frame.Define(p, args[i])
	}
	if fn.ext.Rest != nil {
		frame.Define(fn.ext.Rest, in.List(args[len(fn.ext.Params):]...))
	}
	return frame, nil
}

// makeClosure builds a closure from (lambda formals body...).
func (in *Interp) makeClosure(form *Obj, env *Frame) (*Obj, error) {
	if form.Kind != KPair {
		return nil, evalError("lambda: malformed")
	}
	params, rest, err := parseFormals(form.Car)
	if err != nil {
		return nil, err
	}
	body, ok := ListToSlice(form.Cdr)
	if !ok {
		return nil, evalError("lambda: malformed body")
	}
	c := in.alloc(KClosure)
	c.ext = &objExt{Params: params, Rest: rest, Body: body, Env: env}
	markEscaped(env)
	return c, nil
}

func parseFormals(f *Obj) (params []*Obj, rest *Obj, err error) {
	switch f.Kind {
	case KSymbol: // (lambda args ...)
		return nil, f, nil
	case KNil:
		return nil, nil, nil
	case KPair:
		cur := f
		for cur.Kind == KPair {
			if cur.Car.Kind != KSymbol {
				return nil, nil, evalError("lambda: non-symbol formal")
			}
			params = append(params, cur.Car)
			cur = cur.Cdr
		}
		if cur.Kind == KSymbol {
			rest = cur
		} else if cur.Kind != KNil {
			return nil, nil, evalError("lambda: malformed formals")
		}
		return params, rest, nil
	default:
		return nil, nil, evalError("lambda: malformed formals")
	}
}

// evalDefine handles (define x v) and (define (f . formals) body...).
func (in *Interp) evalDefine(form *Obj, env *Frame) (*Obj, error) {
	if form.Kind != KPair {
		return nil, evalError("define: malformed")
	}
	target := form.Car
	switch target.Kind {
	case KSymbol:
		if form.Cdr.Kind != KPair {
			env.Define(target, Unspecified)
			return Unspecified, nil
		}
		v, err := in.Eval(form.Cdr.Car, env)
		if err != nil {
			return nil, err
		}
		env.Define(target, v)
		return Unspecified, nil
	case KPair:
		name := target.Car
		if name.Kind != KSymbol {
			return nil, evalError("define: bad function name")
		}
		lam := in.Cons(target.Cdr, form.Cdr) // (formals body...)
		c, err := in.makeClosure(lam, env)
		if err != nil {
			return nil, err
		}
		c.ext.Name = name.ext.Name
		env.Define(name, c)
		return Unspecified, nil
	default:
		return nil, evalError("define: malformed")
	}
}

// evalBodyList evaluates all but the last expression of a body (a pair
// chain), returning the last as the caller's new tail expression (nil for
// an empty body). It never allocates: multi-expression bodies need no
// begin-wrapping and no slice conversion.
func (in *Interp) evalBodyList(body *Obj, env *Frame) (*Obj, error) {
	if body.Kind != KPair {
		return nil, nil
	}
	for body.Cdr.Kind == KPair {
		if _, err := in.Eval(body.Car, env); err != nil {
			return nil, err
		}
		body = body.Cdr
	}
	return body.Car, nil
}

// checkBinding validates one (symbol init) binding form.
func checkBinding(b *Obj) error {
	if b.Kind != KPair || b.Car.Kind != KSymbol || b.Cdr.Kind != KPair {
		return evalError("let: malformed binding %s", WriteString(b))
	}
	return nil
}

// evalLet handles plain and named let, returning the body (a pair chain)
// and the new environment.
func (in *Interp) evalLet(form *Obj, env *Frame) (*Obj, *Frame, error) {
	if form.Kind != KPair {
		return nil, nil, evalError("let: malformed")
	}
	// Named let: (let loop ((v init)...) body...)
	if form.Car.Kind == KSymbol {
		name := form.Car
		rest := form.Cdr
		if rest.Kind != KPair {
			return nil, nil, evalError("named let: malformed")
		}
		binds, body := rest.Car, rest.Cdr
		// loopEnv is owned and recyclable, not escaped: the loop closure
		// below is deliberately unmarked. It can only leak out of the
		// loop by being referenced in value position (the KSymbol case
		// marks then) or by being captured inside a lambda whose chain
		// passes through loopEnv (makeClosure marks then) — head-position
		// loop calls pin nothing, so iterative loops recycle every frame.
		// Named-let loop procedures are compiled to jumps by real
		// runtimes (Racket never materializes them), so this one is not
		// a heap allocation: loops stay allocation-free. The closure Obj
		// itself recycles with its frame (Frame.loopc), so a loop entry
		// reuses a dead loop's closure and backing arrays.
		var c *Obj
		if n := len(in.freeClosures); n > 0 {
			c = in.freeClosures[n-1]
			in.freeClosures[n-1] = nil
			in.freeClosures = in.freeClosures[:n-1]
			ce := c.ext
			ce.Params = ce.Params[:0]
			ce.Body = ce.Body[:0]
			ce.Rest = nil
		} else {
			c = &Obj{Kind: KClosure, ext: &objExt{}}
		}
		ce := c.ext
		cur := binds
		for ; cur.Kind == KPair; cur = cur.Cdr {
			if err := checkBinding(cur.Car); err != nil {
				return nil, nil, err
			}
			ce.Params = append(ce.Params, cur.Car.Car)
		}
		if cur.Kind != KNil {
			return nil, nil, evalError("let: improper binding list")
		}
		for b := body; b.Kind == KPair; b = b.Cdr {
			ce.Body = append(ce.Body, b.Car)
		}
		loopEnv := in.newFrame(env)
		in.owned = append(in.owned, loopEnv)
		ce.Env = loopEnv
		ce.Name = name.ext.Name
		loopEnv.Define(name, c)
		loopEnv.loopc = c
		// Initial loop arguments ride the operand stack, like any other
		// application's.
		abase := len(in.argStack)
		for b := binds; b.Kind == KPair; b = b.Cdr {
			v, err := in.Eval(b.Car.Cdr.Car, env)
			if err != nil {
				in.argStack = in.argStack[:abase]
				return nil, nil, err
			}
			in.argStack = append(in.argStack, v)
		}
		frame, err := in.bindParams(c, in.argStack[abase:])
		in.argStack = in.argStack[:abase]
		if err != nil {
			return nil, nil, err
		}
		return body, frame, nil
	}

	// Plain let: inits evaluate in the outer env, bindings land directly
	// in the fresh frame — no params/inits slices.
	frame := in.newFrame(env)
	in.owned = append(in.owned, frame)
	cur := form.Car
	for ; cur.Kind == KPair; cur = cur.Cdr {
		b := cur.Car
		if err := checkBinding(b); err != nil {
			return nil, nil, err
		}
		v, err := in.Eval(b.Cdr.Car, env)
		if err != nil {
			return nil, nil, err
		}
		frame.Define(b.Car, v)
	}
	if cur.Kind != KNil {
		return nil, nil, evalError("let: improper binding list")
	}
	return form.Cdr, frame, nil
}

func (in *Interp) evalLetStar(form *Obj, env *Frame) (*Obj, *Frame, error) {
	if form.Kind != KPair {
		return nil, nil, evalError("let*: malformed")
	}
	frame := env
	cur := form.Car
	for ; cur.Kind == KPair; cur = cur.Cdr {
		b := cur.Car
		if err := checkBinding(b); err != nil {
			return nil, nil, err
		}
		frame = in.newFrame(frame)
		in.owned = append(in.owned, frame)
		v, err := in.Eval(b.Cdr.Car, frame)
		if err != nil {
			return nil, nil, err
		}
		frame.Define(b.Car, v)
	}
	if cur.Kind != KNil {
		return nil, nil, evalError("let: improper binding list")
	}
	if frame == env {
		frame = in.newFrame(env)
		in.owned = append(in.owned, frame)
	}
	return form.Cdr, frame, nil
}

func (in *Interp) evalLetrec(form *Obj, env *Frame) (*Obj, *Frame, error) {
	if form.Kind != KPair {
		return nil, nil, evalError("letrec: malformed")
	}
	frame := in.newFrame(env)
	in.owned = append(in.owned, frame)
	cur := form.Car
	for ; cur.Kind == KPair; cur = cur.Cdr {
		if err := checkBinding(cur.Car); err != nil {
			return nil, nil, err
		}
		frame.Define(cur.Car.Car, Unspecified)
	}
	if cur.Kind != KNil {
		return nil, nil, evalError("let: improper binding list")
	}
	for cur = form.Car; cur.Kind == KPair; cur = cur.Cdr {
		b := cur.Car
		v, err := in.Eval(b.Cdr.Car, frame)
		if err != nil {
			return nil, nil, err
		}
		frame.Define(b.Car, v)
	}
	return form.Cdr, frame, nil
}

// evalCond returns either a tail expression or a final value.
func (in *Interp) evalCond(clauses *Obj, env *Frame) (tail *Obj, done bool, v *Obj, err error) {
	for cur := clauses; cur.Kind == KPair; cur = cur.Cdr {
		cl := cur.Car
		if cl.Kind != KPair {
			return nil, false, nil, evalError("cond: malformed clause")
		}
		test := cl.Car
		isElse := test.Kind == KSymbol && string(test.Str) == "else"
		var tv *Obj
		if isElse {
			tv = True
		} else {
			tv, err = in.Eval(test, env)
			if err != nil {
				return nil, false, nil, err
			}
		}
		if !Truthy(tv) {
			continue
		}
		body, _ := ListToSlice(cl.Cdr)
		if len(body) == 0 {
			return nil, true, tv, nil
		}
		// (test => proc)
		if len(body) == 2 && body[0].Kind == KSymbol && string(body[0].Str) == "=>" {
			proc, err := in.Eval(body[1], env)
			if err != nil {
				return nil, false, nil, err
			}
			v, err := in.Apply(proc, []*Obj{tv})
			return nil, true, v, err
		}
		for _, e := range body[:len(body)-1] {
			if _, err := in.Eval(e, env); err != nil {
				return nil, false, nil, err
			}
		}
		return body[len(body)-1], false, nil, nil
	}
	return nil, true, Unspecified, nil
}

func (in *Interp) evalCase(form *Obj, env *Frame) (tail *Obj, done bool, v *Obj, err error) {
	if form.Kind != KPair {
		return nil, false, nil, evalError("case: malformed")
	}
	key, err := in.Eval(form.Car, env)
	if err != nil {
		return nil, false, nil, err
	}
	for cur := form.Cdr; cur.Kind == KPair; cur = cur.Cdr {
		cl := cur.Car
		if cl.Kind != KPair {
			return nil, false, nil, evalError("case: malformed clause")
		}
		match := false
		if cl.Car.Kind == KSymbol && string(cl.Car.Str) == "else" {
			match = true
		} else {
			for dc := cl.Car; dc.Kind == KPair; dc = dc.Cdr {
				if eqv(key, dc.Car) {
					match = true
					break
				}
			}
		}
		if !match {
			continue
		}
		body, _ := ListToSlice(cl.Cdr)
		if len(body) == 0 {
			return nil, true, Unspecified, nil
		}
		for _, e := range body[:len(body)-1] {
			if _, err := in.Eval(e, env); err != nil {
				return nil, false, nil, err
			}
		}
		return body[len(body)-1], false, nil, nil
	}
	return nil, true, Unspecified, nil
}

// evalDo implements (do ((var init step)...) (test result...) body...).
func (in *Interp) evalDo(form *Obj, env *Frame) (*Obj, error) {
	if form.Kind != KPair || form.Cdr.Kind != KPair {
		return nil, evalError("do: malformed")
	}
	// do-loop frames are managed locally rather than through the owned
	// stack: the loop wholly controls both the current and next frame, so
	// it can recycle the old one at each step swap (releaseFrame skips
	// any frame a closure captured).
	var names []*Obj
	var steps []*Obj
	frame := in.newFrame(env)
	for cur := form.Car; cur.Kind == KPair; cur = cur.Cdr {
		spec, _ := ListToSlice(cur.Car)
		if len(spec) < 2 || spec[0].Kind != KSymbol {
			return nil, evalError("do: malformed variable spec")
		}
		v, err := in.Eval(spec[1], env)
		if err != nil {
			return nil, err
		}
		frame.Define(spec[0], v)
		names = append(names, spec[0])
		if len(spec) >= 3 {
			steps = append(steps, spec[2])
		} else {
			steps = append(steps, spec[0])
		}
	}
	testClause, _ := ListToSlice(form.Cdr.Car)
	if len(testClause) == 0 {
		return nil, evalError("do: missing test")
	}
	body, _ := ListToSlice(form.Cdr.Cdr)
	for {
		in.tick()
		tv, err := in.Eval(testClause[0], frame)
		if err != nil {
			return nil, err
		}
		if Truthy(tv) {
			out := Unspecified
			for _, e := range testClause[1:] {
				out, err = in.Eval(e, frame)
				if err != nil {
					return nil, err
				}
			}
			in.releaseFrame(frame)
			return out, nil
		}
		for _, e := range body {
			if _, err := in.Eval(e, frame); err != nil {
				return nil, err
			}
		}
		next := in.newFrame(env)
		for i, n := range names {
			v, err := in.Eval(steps[i], frame)
			if err != nil {
				in.releaseFrame(next)
				return nil, err
			}
			next.Define(n, v)
		}
		in.releaseFrame(frame)
		frame = next
	}
}

// evalQuasi implements one-level quasiquotation with unquote and
// unquote-splicing (enough for the benchmark sources).
func (in *Interp) evalQuasi(form *Obj, env *Frame, depth int) (*Obj, error) {
	if form.Kind != KPair {
		return form, nil
	}
	if form.Car.Kind == KSymbol {
		switch string(form.Car.Str) {
		case "unquote":
			if depth == 1 {
				return in.Eval(form.Cdr.Car, env)
			}
			inner, err := in.evalQuasi(form.Cdr.Car, env, depth-1)
			if err != nil {
				return nil, err
			}
			return in.List(in.Intern("unquote"), inner), nil
		case "quasiquote":
			inner, err := in.evalQuasi(form.Cdr.Car, env, depth+1)
			if err != nil {
				return nil, err
			}
			return in.List(in.Intern("quasiquote"), inner), nil
		}
	}
	// Element-wise reconstruction with splicing support.
	var items []*Obj
	cur := form
	for cur.Kind == KPair {
		el := cur.Car
		if el.Kind == KPair && el.Car.Kind == KSymbol && string(el.Car.Str) == "unquote-splicing" && depth == 1 {
			spliced, err := in.Eval(el.Cdr.Car, env)
			if err != nil {
				return nil, err
			}
			parts, ok := ListToSlice(spliced)
			if !ok {
				return nil, evalError("unquote-splicing: not a list")
			}
			items = append(items, parts...)
		} else {
			v, err := in.evalQuasi(el, env, depth)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		cur = cur.Cdr
	}
	tail := Nil
	if cur.Kind != KNil {
		t, err := in.evalQuasi(cur, env, depth)
		if err != nil {
			return nil, err
		}
		tail = t
	}
	out := tail
	for i := len(items) - 1; i >= 0; i-- {
		out = in.Cons(items[i], out)
	}
	return out, nil
}

// eqv implements eqv? semantics.
func eqv(a, b *Obj) bool {
	if a == b {
		return true
	}
	if a.Kind != b.Kind {
		// Allow int/float comparison failure (eqv? is strict).
		return false
	}
	switch a.Kind {
	case KInt, KChar:
		return a.Int == b.Int
	case KFloat:
		return a.Float == b.Float
	case KString:
		return false // distinct string objects are not eqv?
	default:
		return false
	}
}

// equalObj implements equal? (deep).
func equalObj(a, b *Obj) bool {
	if eqv(a, b) {
		return true
	}
	if a.Kind != b.Kind {
		if IsNumber(a) && IsNumber(b) {
			return false
		}
		return false
	}
	switch a.Kind {
	case KString, KSymbol:
		return string(a.Str) == string(b.Str)
	case KPair:
		return equalObj(a.Car, b.Car) && equalObj(a.Cdr, b.Cdr)
	case KVector:
		if len(a.Vec) != len(b.Vec) {
			return false
		}
		for i := range a.Vec {
			if !equalObj(a.Vec[i], b.Vec[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

var _ = fmt.Sprintf
