package scheme

import "fmt"

// Eval evaluates expr in env with proper tail calls: tail positions update
// expr/env and loop rather than recursing, so iterative Scheme (named
// let, do loops, tail recursion) runs in constant Go stack — the
// tail-call elimination Racket guarantees.
func (in *Interp) Eval(expr *Obj, env *Frame) (*Obj, error) {
	for {
		in.tick()
		switch expr.Kind {
		case KSymbol:
			v, ok := env.Lookup(expr)
			if !ok {
				return nil, evalError("unbound variable %s", expr.Str)
			}
			return v, nil
		case KPair:
			// fall through to combination handling below
		default:
			return expr, nil // self-evaluating
		}

		head := expr.Car
		if head.Kind == KSymbol {
			special := string(head.Str)
			switch special {
			case "quote":
				return expr.Cdr.Car, nil

			case "if":
				args, ok := ListToSlice(expr.Cdr)
				if !ok || len(args) < 2 || len(args) > 3 {
					return nil, evalError("if: malformed")
				}
				c, err := in.Eval(args[0], env)
				if err != nil {
					return nil, err
				}
				if Truthy(c) {
					expr = args[1]
				} else if len(args) == 3 {
					expr = args[2]
				} else {
					return Unspecified, nil
				}
				continue

			case "define":
				return in.evalDefine(expr.Cdr, env)

			case "set!":
				args, ok := ListToSlice(expr.Cdr)
				if !ok || len(args) != 2 || args[0].Kind != KSymbol {
					return nil, evalError("set!: malformed")
				}
				v, err := in.Eval(args[1], env)
				if err != nil {
					return nil, err
				}
				if !env.Set(args[0], v) {
					return nil, evalError("set!: unbound variable %s", args[0].Str)
				}
				return Unspecified, nil

			case "lambda":
				return in.makeClosure(expr.Cdr, env)

			case "begin":
				body, ok := ListToSlice(expr.Cdr)
				if !ok {
					return nil, evalError("begin: malformed")
				}
				if len(body) == 0 {
					return Unspecified, nil
				}
				for _, e := range body[:len(body)-1] {
					if _, err := in.Eval(e, env); err != nil {
						return nil, err
					}
				}
				expr = body[len(body)-1]
				continue

			case "let":
				body, le, err := in.evalLet(expr.Cdr, env)
				if err != nil {
					return nil, err
				}
				tail, err := in.evalSeq(body, le)
				if err != nil {
					return nil, err
				}
				if tail == nil {
					return Unspecified, nil
				}
				expr, env = tail, le
				continue

			case "let*":
				body, le, err := in.evalLetStar(expr.Cdr, env)
				if err != nil {
					return nil, err
				}
				tail, err := in.evalSeq(body, le)
				if err != nil {
					return nil, err
				}
				if tail == nil {
					return Unspecified, nil
				}
				expr, env = tail, le
				continue

			case "letrec", "letrec*":
				body, le, err := in.evalLetrec(expr.Cdr, env)
				if err != nil {
					return nil, err
				}
				tail, err := in.evalSeq(body, le)
				if err != nil {
					return nil, err
				}
				if tail == nil {
					return Unspecified, nil
				}
				expr, env = tail, le
				continue

			case "cond":
				ne, done, v, err := in.evalCond(expr.Cdr, env)
				if err != nil {
					return nil, err
				}
				if done {
					return v, nil
				}
				expr = ne
				continue

			case "case":
				ne, done, v, err := in.evalCase(expr.Cdr, env)
				if err != nil {
					return nil, err
				}
				if done {
					return v, nil
				}
				expr = ne
				continue

			case "and":
				args, _ := ListToSlice(expr.Cdr)
				if len(args) == 0 {
					return True, nil
				}
				for _, e := range args[:len(args)-1] {
					v, err := in.Eval(e, env)
					if err != nil {
						return nil, err
					}
					if !Truthy(v) {
						return v, nil
					}
				}
				expr = args[len(args)-1]
				continue

			case "or":
				args, _ := ListToSlice(expr.Cdr)
				if len(args) == 0 {
					return False, nil
				}
				for _, e := range args[:len(args)-1] {
					v, err := in.Eval(e, env)
					if err != nil {
						return nil, err
					}
					if Truthy(v) {
						return v, nil
					}
				}
				expr = args[len(args)-1]
				continue

			case "when", "unless":
				args, ok := ListToSlice(expr.Cdr)
				if !ok || len(args) < 1 {
					return nil, evalError("%s: malformed", special)
				}
				c, err := in.Eval(args[0], env)
				if err != nil {
					return nil, err
				}
				hit := Truthy(c)
				if special == "unless" {
					hit = !hit
				}
				if !hit || len(args) == 1 {
					return Unspecified, nil
				}
				for _, e := range args[1 : len(args)-1] {
					if _, err := in.Eval(e, env); err != nil {
						return nil, err
					}
				}
				expr = args[len(args)-1]
				continue

			case "do":
				v, err := in.evalDo(expr.Cdr, env)
				return v, err

			case "quasiquote":
				return in.evalQuasi(expr.Cdr.Car, env, 1)
			}
		}

		// Combination: evaluate operator and operands, then apply.
		fn, err := in.Eval(head, env)
		if err != nil {
			return nil, err
		}
		var args []*Obj
		for cur := expr.Cdr; cur.Kind == KPair; cur = cur.Cdr {
			a, err := in.Eval(cur.Car, env)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}

		switch fn.Kind {
		case KBuiltin:
			return fn.Fn(in, args)
		case KClosure:
			frame, err := in.bindParams(fn, args)
			if err != nil {
				return nil, err
			}
			if len(fn.Body) == 0 {
				return Unspecified, nil
			}
			for _, e := range fn.Body[:len(fn.Body)-1] {
				if _, err := in.Eval(e, frame); err != nil {
					return nil, err
				}
			}
			expr, env = fn.Body[len(fn.Body)-1], frame
			continue
		default:
			return nil, evalError("not a procedure: %s", WriteString(fn))
		}
	}
}

// Apply invokes a procedure from Go (builtins like map/apply use it). Not
// a tail position.
func (in *Interp) Apply(fn *Obj, args []*Obj) (*Obj, error) {
	switch fn.Kind {
	case KBuiltin:
		in.tick()
		return fn.Fn(in, args)
	case KClosure:
		frame, err := in.bindParams(fn, args)
		if err != nil {
			return nil, err
		}
		var out *Obj = Unspecified
		for _, e := range fn.Body {
			v, err := in.Eval(e, frame)
			if err != nil {
				return nil, err
			}
			out = v
		}
		return out, nil
	default:
		return nil, evalError("apply: not a procedure: %s", WriteString(fn))
	}
}

func (in *Interp) bindParams(fn *Obj, args []*Obj) (*Frame, error) {
	frame := NewFrame(fn.Env)
	if fn.Rest == nil && len(args) != len(fn.Params) {
		return nil, evalError("arity: want %d args, got %d", len(fn.Params), len(args))
	}
	if fn.Rest != nil && len(args) < len(fn.Params) {
		return nil, evalError("arity: want at least %d args, got %d", len(fn.Params), len(args))
	}
	for i, p := range fn.Params {
		frame.Define(p, args[i])
	}
	if fn.Rest != nil {
		frame.Define(fn.Rest, in.List(args[len(fn.Params):]...))
	}
	return frame, nil
}

// makeClosure builds a closure from (lambda formals body...).
func (in *Interp) makeClosure(form *Obj, env *Frame) (*Obj, error) {
	if form.Kind != KPair {
		return nil, evalError("lambda: malformed")
	}
	params, rest, err := parseFormals(form.Car)
	if err != nil {
		return nil, err
	}
	body, ok := ListToSlice(form.Cdr)
	if !ok {
		return nil, evalError("lambda: malformed body")
	}
	c := in.alloc(KClosure)
	c.Params = params
	c.Rest = rest
	c.Body = body
	c.Env = env
	return c, nil
}

func parseFormals(f *Obj) (params []*Obj, rest *Obj, err error) {
	switch f.Kind {
	case KSymbol: // (lambda args ...)
		return nil, f, nil
	case KNil:
		return nil, nil, nil
	case KPair:
		cur := f
		for cur.Kind == KPair {
			if cur.Car.Kind != KSymbol {
				return nil, nil, evalError("lambda: non-symbol formal")
			}
			params = append(params, cur.Car)
			cur = cur.Cdr
		}
		if cur.Kind == KSymbol {
			rest = cur
		} else if cur.Kind != KNil {
			return nil, nil, evalError("lambda: malformed formals")
		}
		return params, rest, nil
	default:
		return nil, nil, evalError("lambda: malformed formals")
	}
}

// evalDefine handles (define x v) and (define (f . formals) body...).
func (in *Interp) evalDefine(form *Obj, env *Frame) (*Obj, error) {
	if form.Kind != KPair {
		return nil, evalError("define: malformed")
	}
	target := form.Car
	switch target.Kind {
	case KSymbol:
		if form.Cdr.Kind != KPair {
			env.Define(target, Unspecified)
			return Unspecified, nil
		}
		v, err := in.Eval(form.Cdr.Car, env)
		if err != nil {
			return nil, err
		}
		env.Define(target, v)
		return Unspecified, nil
	case KPair:
		name := target.Car
		if name.Kind != KSymbol {
			return nil, evalError("define: bad function name")
		}
		lam := in.Cons(target.Cdr, form.Cdr) // (formals body...)
		c, err := in.makeClosure(lam, env)
		if err != nil {
			return nil, err
		}
		c.Name = string(name.Str)
		env.Define(name, c)
		return Unspecified, nil
	default:
		return nil, evalError("define: malformed")
	}
}

// evalSeq evaluates all but the last expression of a body, returning the
// last as the caller's new tail expression (nil for an empty body). It
// never allocates: multi-expression bodies need no begin-wrapping.
func (in *Interp) evalSeq(body []*Obj, env *Frame) (*Obj, error) {
	if len(body) == 0 {
		return nil, nil
	}
	for _, e := range body[:len(body)-1] {
		if _, err := in.Eval(e, env); err != nil {
			return nil, err
		}
	}
	return body[len(body)-1], nil
}

// evalLet handles plain and named let, returning the body and the new
// environment.
func (in *Interp) evalLet(form *Obj, env *Frame) ([]*Obj, *Frame, error) {
	if form.Kind != KPair {
		return nil, nil, evalError("let: malformed")
	}
	// Named let: (let loop ((v init)...) body...)
	if form.Car.Kind == KSymbol {
		name := form.Car
		rest := form.Cdr
		if rest.Kind != KPair {
			return nil, nil, evalError("named let: malformed")
		}
		binds, body := rest.Car, rest.Cdr
		params, inits, err := in.parseBindings(binds)
		if err != nil {
			return nil, nil, err
		}
		loopEnv := NewFrame(env)
		// Named-let loop procedures are compiled to jumps by real
		// runtimes (Racket never materializes them), so this one is not
		// a heap allocation: loops stay allocation-free.
		c := &Obj{Kind: KClosure}
		c.Params = params
		c.Body, _ = ListToSlice(body)
		c.Env = loopEnv
		c.Name = string(name.Str)
		loopEnv.Define(name, c)
		args := make([]*Obj, len(inits))
		for i, e := range inits {
			v, err := in.Eval(e, env)
			if err != nil {
				return nil, nil, err
			}
			args[i] = v
		}
		frame, err := in.bindParams(c, args)
		if err != nil {
			return nil, nil, err
		}
		return c.Body, frame, nil
	}

	binds, body := form.Car, form.Cdr
	params, inits, err := in.parseBindings(binds)
	if err != nil {
		return nil, nil, err
	}
	frame := NewFrame(env)
	for i, p := range params {
		v, err := in.Eval(inits[i], env)
		if err != nil {
			return nil, nil, err
		}
		frame.Define(p, v)
	}
	bodyList, _ := ListToSlice(body)
	return bodyList, frame, nil
}

func (in *Interp) evalLetStar(form *Obj, env *Frame) ([]*Obj, *Frame, error) {
	if form.Kind != KPair {
		return nil, nil, evalError("let*: malformed")
	}
	params, inits, err := in.parseBindings(form.Car)
	if err != nil {
		return nil, nil, err
	}
	frame := env
	for i, p := range params {
		frame = NewFrame(frame)
		v, err := in.Eval(inits[i], frame)
		if err != nil {
			return nil, nil, err
		}
		frame.Define(p, v)
	}
	if frame == env {
		frame = NewFrame(env)
	}
	bodyList, _ := ListToSlice(form.Cdr)
	return bodyList, frame, nil
}

func (in *Interp) evalLetrec(form *Obj, env *Frame) ([]*Obj, *Frame, error) {
	if form.Kind != KPair {
		return nil, nil, evalError("letrec: malformed")
	}
	params, inits, err := in.parseBindings(form.Car)
	if err != nil {
		return nil, nil, err
	}
	frame := NewFrame(env)
	for _, p := range params {
		frame.Define(p, Unspecified)
	}
	for i, p := range params {
		v, err := in.Eval(inits[i], frame)
		if err != nil {
			return nil, nil, err
		}
		frame.Define(p, v)
	}
	bodyList, _ := ListToSlice(form.Cdr)
	return bodyList, frame, nil
}

func (in *Interp) parseBindings(binds *Obj) (params []*Obj, inits []*Obj, err error) {
	cur := binds
	for cur.Kind == KPair {
		b := cur.Car
		if b.Kind != KPair || b.Car.Kind != KSymbol || b.Cdr.Kind != KPair {
			return nil, nil, evalError("let: malformed binding %s", WriteString(b))
		}
		params = append(params, b.Car)
		inits = append(inits, b.Cdr.Car)
		cur = cur.Cdr
	}
	if cur.Kind != KNil {
		return nil, nil, evalError("let: improper binding list")
	}
	return params, inits, nil
}

// evalCond returns either a tail expression or a final value.
func (in *Interp) evalCond(clauses *Obj, env *Frame) (tail *Obj, done bool, v *Obj, err error) {
	for cur := clauses; cur.Kind == KPair; cur = cur.Cdr {
		cl := cur.Car
		if cl.Kind != KPair {
			return nil, false, nil, evalError("cond: malformed clause")
		}
		test := cl.Car
		isElse := test.Kind == KSymbol && string(test.Str) == "else"
		var tv *Obj
		if isElse {
			tv = True
		} else {
			tv, err = in.Eval(test, env)
			if err != nil {
				return nil, false, nil, err
			}
		}
		if !Truthy(tv) {
			continue
		}
		body, _ := ListToSlice(cl.Cdr)
		if len(body) == 0 {
			return nil, true, tv, nil
		}
		// (test => proc)
		if len(body) == 2 && body[0].Kind == KSymbol && string(body[0].Str) == "=>" {
			proc, err := in.Eval(body[1], env)
			if err != nil {
				return nil, false, nil, err
			}
			v, err := in.Apply(proc, []*Obj{tv})
			return nil, true, v, err
		}
		for _, e := range body[:len(body)-1] {
			if _, err := in.Eval(e, env); err != nil {
				return nil, false, nil, err
			}
		}
		return body[len(body)-1], false, nil, nil
	}
	return nil, true, Unspecified, nil
}

func (in *Interp) evalCase(form *Obj, env *Frame) (tail *Obj, done bool, v *Obj, err error) {
	if form.Kind != KPair {
		return nil, false, nil, evalError("case: malformed")
	}
	key, err := in.Eval(form.Car, env)
	if err != nil {
		return nil, false, nil, err
	}
	for cur := form.Cdr; cur.Kind == KPair; cur = cur.Cdr {
		cl := cur.Car
		if cl.Kind != KPair {
			return nil, false, nil, evalError("case: malformed clause")
		}
		match := false
		if cl.Car.Kind == KSymbol && string(cl.Car.Str) == "else" {
			match = true
		} else {
			for dc := cl.Car; dc.Kind == KPair; dc = dc.Cdr {
				if eqv(key, dc.Car) {
					match = true
					break
				}
			}
		}
		if !match {
			continue
		}
		body, _ := ListToSlice(cl.Cdr)
		if len(body) == 0 {
			return nil, true, Unspecified, nil
		}
		for _, e := range body[:len(body)-1] {
			if _, err := in.Eval(e, env); err != nil {
				return nil, false, nil, err
			}
		}
		return body[len(body)-1], false, nil, nil
	}
	return nil, true, Unspecified, nil
}

// evalDo implements (do ((var init step)...) (test result...) body...).
func (in *Interp) evalDo(form *Obj, env *Frame) (*Obj, error) {
	if form.Kind != KPair || form.Cdr.Kind != KPair {
		return nil, evalError("do: malformed")
	}
	var names []*Obj
	var steps []*Obj
	frame := NewFrame(env)
	for cur := form.Car; cur.Kind == KPair; cur = cur.Cdr {
		spec, _ := ListToSlice(cur.Car)
		if len(spec) < 2 || spec[0].Kind != KSymbol {
			return nil, evalError("do: malformed variable spec")
		}
		v, err := in.Eval(spec[1], env)
		if err != nil {
			return nil, err
		}
		frame.Define(spec[0], v)
		names = append(names, spec[0])
		if len(spec) >= 3 {
			steps = append(steps, spec[2])
		} else {
			steps = append(steps, spec[0])
		}
	}
	testClause, _ := ListToSlice(form.Cdr.Car)
	if len(testClause) == 0 {
		return nil, evalError("do: missing test")
	}
	body, _ := ListToSlice(form.Cdr.Cdr)
	for {
		in.tick()
		tv, err := in.Eval(testClause[0], frame)
		if err != nil {
			return nil, err
		}
		if Truthy(tv) {
			out := Unspecified
			for _, e := range testClause[1:] {
				out, err = in.Eval(e, frame)
				if err != nil {
					return nil, err
				}
			}
			return out, nil
		}
		for _, e := range body {
			if _, err := in.Eval(e, frame); err != nil {
				return nil, err
			}
		}
		next := NewFrame(env)
		for i, n := range names {
			v, err := in.Eval(steps[i], frame)
			if err != nil {
				return nil, err
			}
			next.Define(n, v)
		}
		frame = next
	}
}

// evalQuasi implements one-level quasiquotation with unquote and
// unquote-splicing (enough for the benchmark sources).
func (in *Interp) evalQuasi(form *Obj, env *Frame, depth int) (*Obj, error) {
	if form.Kind != KPair {
		return form, nil
	}
	if form.Car.Kind == KSymbol {
		switch string(form.Car.Str) {
		case "unquote":
			if depth == 1 {
				return in.Eval(form.Cdr.Car, env)
			}
			inner, err := in.evalQuasi(form.Cdr.Car, env, depth-1)
			if err != nil {
				return nil, err
			}
			return in.List(in.Intern("unquote"), inner), nil
		case "quasiquote":
			inner, err := in.evalQuasi(form.Cdr.Car, env, depth+1)
			if err != nil {
				return nil, err
			}
			return in.List(in.Intern("quasiquote"), inner), nil
		}
	}
	// Element-wise reconstruction with splicing support.
	var items []*Obj
	cur := form
	for cur.Kind == KPair {
		el := cur.Car
		if el.Kind == KPair && el.Car.Kind == KSymbol && string(el.Car.Str) == "unquote-splicing" && depth == 1 {
			spliced, err := in.Eval(el.Cdr.Car, env)
			if err != nil {
				return nil, err
			}
			parts, ok := ListToSlice(spliced)
			if !ok {
				return nil, evalError("unquote-splicing: not a list")
			}
			items = append(items, parts...)
		} else {
			v, err := in.evalQuasi(el, env, depth)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		cur = cur.Cdr
	}
	tail := Nil
	if cur.Kind != KNil {
		t, err := in.evalQuasi(cur, env, depth)
		if err != nil {
			return nil, err
		}
		tail = t
	}
	out := tail
	for i := len(items) - 1; i >= 0; i-- {
		out = in.Cons(items[i], out)
	}
	return out, nil
}

// eqv implements eqv? semantics.
func eqv(a, b *Obj) bool {
	if a == b {
		return true
	}
	if a.Kind != b.Kind {
		// Allow int/float comparison failure (eqv? is strict).
		return false
	}
	switch a.Kind {
	case KInt, KChar:
		return a.Int == b.Int
	case KFloat:
		return a.Float == b.Float
	case KString:
		return false // distinct string objects are not eqv?
	default:
		return false
	}
}

// equalObj implements equal? (deep).
func equalObj(a, b *Obj) bool {
	if eqv(a, b) {
		return true
	}
	if a.Kind != b.Kind {
		if IsNumber(a) && IsNumber(b) {
			return false
		}
		return false
	}
	switch a.Kind {
	case KString, KSymbol:
		return string(a.Str) == string(b.Str)
	case KPair:
		return equalObj(a.Car, b.Car) && equalObj(a.Cdr, b.Cdr)
	case KVector:
		if len(a.Vec) != len(b.Vec) {
			return false
		}
		for i := range a.Vec {
			if !equalObj(a.Vec[i], b.Vec[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

var _ = fmt.Sprintf
