package scheme

import (
	"fmt"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
	"multiverse/internal/ros"
)

// OS is the consumer-side view of the execution environment the runtime
// needs — a subset of core.Env, so any Env satisfies it. The interpreter
// never knows which world it runs in; that is Multiverse's contract.
type OS interface {
	Clock() *cycles.Clock
	Compute(c cycles.Cycles)
	Syscall(call linuxabi.Call) linuxabi.Result
	VDSO(num linuxabi.Sysno) (uint64, linuxabi.Errno)
	Touch(addr uint64, write bool) error
	CheckTimer() bool
	RegisterSignalCode(addr uint64, fn func(*ros.SignalContext))
}

// Interp is one interpreter instance: heap, global environment, symbol
// table, and the output port.
type Interp struct {
	os     OS
	gc     *GC
	global *Frame
	syms   map[string]*Obj

	// Batched user-time accounting: charging the clock per reduction
	// would dominate runtime, so cycles accumulate here and flush at
	// syscall boundaries and timer checks.
	pendingCompute cycles.Cycles

	// stdout buffering (a line-buffered stdio FILE).
	outBuf []byte

	// argStack is the evaluator's operand stack: combination arguments
	// are pushed here and passed down as sub-slices, so argument lists
	// cost no allocation. Callees never retain the slice (builtins copy,
	// closures bind into frames), so stack discipline is safe.
	argStack []*Obj

	// Frame recycling. owned is a stack of frames created by in-flight
	// evaluations (let frames, parameter frames): each Eval records the
	// stack depth on entry and, on exit, returns every frame it pushed to
	// freeFrames — unless the frame escaped into a closure. Tail calls
	// sweep eagerly (see sweepTail) so loops run in constant frame space.
	owned      []*Frame
	freeFrames []*Frame

	// freeClosures recycles named-let loop closures, whose lifetime is
	// tied to their loop frame (see Frame.loopc): one loop entry reuses
	// the closure — and its Params/Body backing arrays — of a finished
	// loop instead of allocating fresh ones.
	freeClosures []*Obj

	// Cooperative threading: the engine checks the interval timer every
	// timerCheckEvery reductions; when it fires, the scheduler's tick
	// runs (and occasionally polls, as Racket's scheduler does).
	reductions      uint64
	timerChecks     uint64
	timerFires      uint64
	pollEvery       int
	sinceLastPoll   int
	schedulerActive bool

	// Places (message-passing parallelism).
	placeSpawner PlaceSpawner
	places       map[int64]*placeHandle
	nextPlace    int64
}

// Tunables.
const (
	reductionCost   = 38   // cycles charged per evaluation step
	flushThreshold  = 4096 // stdout buffer size before a write(2)
	timerCheckEvery = 512  // reductions between timer polls
)

// NewInterp creates an interpreter bound to an execution environment. It
// performs the runtime's startup OS work: registers the GC's SIGSEGV
// handler (rt_sigaction), creates the initial heap (the mmap storm of
// Figure 11), and arms the scheduler's interval timer (setitimer).
func NewInterp(osenv OS) (*Interp, error) {
	in := &Interp{
		os:        osenv,
		syms:      make(map[string]*Obj, 256),
		pollEvery: 4,
	}
	in.global = NewFrame(nil)
	in.global.root = true

	// libc-style process setup chatter before the heap exists.
	brk := in.os.Syscall(linuxabi.Call{Num: linuxabi.SysBrk, Args: [6]uint64{0}})
	if brk.Ok() {
		_ = in.os.Syscall(linuxabi.Call{Num: linuxabi.SysBrk, Args: [6]uint64{brk.Ret + 1<<20}})
	}
	_ = in.os.Syscall(linuxabi.Call{Num: linuxabi.SysUname})
	_ = in.os.Syscall(linuxabi.Call{Num: linuxabi.SysIoctl, Args: [6]uint64{1}}) // isatty(stdout)

	gc, err := newGC(in)
	if err != nil {
		return nil, err
	}
	in.gc = gc
	installBuiltins(in)
	installExtendedBuiltins(in)
	// HRT-only capabilities appear when the environment offers them —
	// the start of the incremental -> accelerator transition.
	if ak, ok := osenv.(AKCaller); ok {
		installHRTBuiltins(in, ak)
	} else {
		installUserBuiltinFallbacks(in)
	}

	// Arm the cooperative-scheduler tick: 10 ms virtual interval.
	res := in.os.Syscall(linuxabi.Call{
		Num:  linuxabi.SysSetitimer,
		Args: [6]uint64{linuxabi.ITimerVirtual, 10_000, 10_000},
	})
	if !res.Ok() {
		return nil, fmt.Errorf("scheme: setitimer: %v", res.Err)
	}
	in.installTimerHandler()
	in.schedulerActive = true
	return in, nil
}

// timerHandlerAddr is where the scheduler tick handler "lives".
const timerHandlerAddr = 0x0000_0000_0041_2000

func (in *Interp) installTimerHandler() {
	in.os.RegisterSignalCode(timerHandlerAddr, func(ctx *ros.SignalContext) {
		in.timerFires++
		// The scheduler occasionally polls for external events while
		// switching green threads, like Racket's runtime does.
		in.sinceLastPoll++
		if in.sinceLastPoll >= in.pollEvery {
			in.sinceLastPoll = 0
			sys := ctx.Sys
			if sys == nil {
				sys = in.os.Syscall
			}
			_ = sys(linuxabi.Call{Num: linuxabi.SysPoll, Args: [6]uint64{0, 0, 0}})
		}
	})
	_ = in.os.Syscall(linuxabi.Call{
		Num:  linuxabi.SysRtSigaction,
		Args: [6]uint64{uint64(linuxabi.SIGVTALRM), timerHandlerAddr, 0},
	})
}

// Global returns the global environment.
func (in *Interp) Global() *Frame { return in.global }

// GC returns the collector (stats).
func (in *Interp) GC() *GC { return in.gc }

// charge accumulates user-mode compute cycles.
func (in *Interp) charge(c cycles.Cycles) { in.pendingCompute += c }

// flushCompute pushes accumulated compute time to the environment. Called
// before anything that observes the clock (syscalls, timers).
func (in *Interp) flushCompute() {
	if in.pendingCompute > 0 {
		in.os.Compute(in.pendingCompute)
		in.pendingCompute = 0
	}
}

// Sys issues a system call with the compute accounting flushed first.
func (in *Interp) Sys(call linuxabi.Call) linuxabi.Result {
	in.flushCompute()
	return in.os.Syscall(call)
}

// tick runs the per-reduction bookkeeping: cycle charge and periodic
// timer checks.
func (in *Interp) tick() {
	in.reductions++
	in.charge(reductionCost)
	if in.reductions%timerCheckEvery == 0 && in.schedulerActive {
		in.flushCompute()
		in.timerChecks++
		in.os.CheckTimer()
	}
}

// Reductions returns the evaluation step count.
func (in *Interp) Reductions() uint64 { return in.reductions }

// TimerFires returns how many scheduler ticks were delivered.
func (in *Interp) TimerFires() uint64 { return in.timerFires }

// ---- Allocation ---------------------------------------------------------

// alloc grabs a cell from the GC and stamps it.
func (in *Interp) alloc(kind Kind) *Obj {
	o := in.gc.alloc()
	o.Kind = kind
	return o
}

// Intern returns the unique symbol for name.
func (in *Interp) Intern(name string) *Obj {
	if s, ok := in.syms[name]; ok {
		return s
	}
	s := in.alloc(KSymbol)
	s.Str = []byte(name)
	s.ext = &objExt{Name: name} // string form, so users of the name allocate no conversion
	s.special = specialCodes[name]
	in.syms[name] = s
	in.gc.addRoot(s) // interned symbols are immortal
	return s
}

// Fixnum immediates: small integers are preboxed, the moral equivalent of
// Racket's tagged fixnums — integer-loop code does not churn the heap.
const (
	fixnumMin = -128
	fixnumMax = 4096
)

var fixnums = func() [fixnumMax - fixnumMin + 1]*Obj {
	var out [fixnumMax - fixnumMin + 1]*Obj
	for i := range out {
		out[i] = &Obj{Kind: KInt, Int: int64(i + fixnumMin)}
	}
	return out
}()

// asciiChars are preboxed character immediates.
var asciiChars = func() [128]*Obj {
	var out [128]*Obj
	for i := range out {
		out[i] = &Obj{Kind: KChar, Int: int64(i)}
	}
	return out
}()

// NewInt returns an integer. Like Racket's 62-bit fixnums, integers are
// immediates: they never live in the GC heap (a shared prebox for small
// values, a fresh immediate otherwise). Only flonums, pairs, strings,
// vectors, and closures are heap-allocated.
func (in *Interp) NewInt(v int64) *Obj {
	if v >= fixnumMin && v <= fixnumMax {
		return fixnums[v-fixnumMin]
	}
	return &Obj{Kind: KInt, Int: v}
}

// NewFloat allocates a float.
func (in *Interp) NewFloat(v float64) *Obj {
	o := in.alloc(KFloat)
	o.Float = v
	return o
}

// NewChar returns a character, preboxed for ASCII.
func (in *Interp) NewChar(c rune) *Obj {
	if c >= 0 && c < 128 {
		return asciiChars[c]
	}
	o := in.alloc(KChar)
	o.Int = int64(c)
	return o
}

// NewString allocates a (mutable) string.
func (in *Interp) NewString(b []byte) *Obj {
	o := in.alloc(KString)
	o.Str = b
	in.gc.creditBytes(len(b))
	return o
}

// Cons allocates a pair.
func (in *Interp) Cons(car, cdr *Obj) *Obj {
	o := in.alloc(KPair)
	o.Car = car
	o.Cdr = cdr
	return o
}

// NewVector allocates a vector with the given elements.
func (in *Interp) NewVector(elems []*Obj) *Obj {
	o := in.alloc(KVector)
	o.Vec = elems
	in.gc.creditBytes(8 * len(elems))
	return o
}

// List builds a proper list.
func (in *Interp) List(elems ...*Obj) *Obj {
	out := Nil
	for i := len(elems) - 1; i >= 0; i-- {
		out = in.Cons(elems[i], out)
	}
	return out
}

// ---- Output -------------------------------------------------------------

// writeOut appends to the stdout buffer, flushing through write(2) when
// full or when a newline lands (line buffering).
func (in *Interp) writeOut(b []byte) {
	in.outBuf = append(in.outBuf, b...)
	if len(in.outBuf) >= flushThreshold || (len(b) > 0 && b[len(b)-1] == '\n') {
		in.FlushOut()
	}
}

// FlushOut forces the buffered stdout through the write system call.
func (in *Interp) FlushOut() {
	if len(in.outBuf) == 0 {
		return
	}
	buf := in.outBuf
	in.outBuf = nil
	_ = in.Sys(linuxabi.Call{
		Num:  linuxabi.SysWrite,
		Args: [6]uint64{1, 0, uint64(len(buf))},
		Data: buf,
	})
}

// evalError formats an evaluation error.
func evalError(format string, args ...any) error {
	return fmt.Errorf("scheme: %s", fmt.Sprintf(format, args...))
}
