package scheme

import (
	"math"
	"strconv"

	"multiverse/internal/cycles"
	"multiverse/internal/linuxabi"
)

// installBuiltins populates the global environment. Builtins charge work
// through tick() at application sites plus explicit charges for
// data-proportional operations.
func installBuiltins(in *Interp) {
	def := func(name string, fn func(*Interp, []*Obj) (*Obj, error)) {
		b := in.alloc(KBuiltin)
		b.ext = &objExt{Name: name, Fn: fn}
		in.global.Define(in.Intern(name), b)
	}

	wantArgs := func(name string, args []*Obj, n int) error {
		if len(args) != n {
			return evalError("%s: want %d args, got %d", name, n, len(args))
		}
		return nil
	}
	wantNum := func(name string, o *Obj) error {
		if !IsNumber(o) {
			return evalError("%s: not a number: %s", name, WriteString(o))
		}
		return nil
	}

	// ---- pairs & lists ------------------------------------------------

	def("cons", func(in *Interp, a []*Obj) (*Obj, error) {
		if err := wantArgs("cons", a, 2); err != nil {
			return nil, err
		}
		return in.Cons(a[0], a[1]), nil
	})
	def("car", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KPair {
			return nil, evalError("car: not a pair")
		}
		return a[0].Car, nil
	})
	def("cdr", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KPair {
			return nil, evalError("cdr: not a pair")
		}
		return a[0].Cdr, nil
	})
	def("set-car!", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KPair {
			return nil, evalError("set-car!: not a pair")
		}
		in.gc.WriteBarrier(a[0])
		a[0].Car = a[1]
		return Unspecified, nil
	})
	def("set-cdr!", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KPair {
			return nil, evalError("set-cdr!: not a pair")
		}
		in.gc.WriteBarrier(a[0])
		a[0].Cdr = a[1]
		return Unspecified, nil
	})
	// Compound accessors.
	compound := map[string]string{
		"caar": "aa", "cadr": "da", "cdar": "ad", "cddr": "dd",
		"caddr": "dda", "cadddr": "ddda", "cdddr": "ddd",
	}
	for name, path := range compound {
		p := path
		n := name
		def(n, func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) != 1 {
				return nil, evalError("%s: want 1 arg", n)
			}
			o := a[0]
			for _, step := range p {
				if o.Kind != KPair {
					return nil, evalError("%s: not a pair", n)
				}
				if step == 'a' {
					o = o.Car
				} else {
					o = o.Cdr
				}
			}
			return o, nil
		})
	}
	def("list", func(in *Interp, a []*Obj) (*Obj, error) { return in.List(a...), nil })
	def("length", func(in *Interp, a []*Obj) (*Obj, error) {
		if err := wantArgs("length", a, 1); err != nil {
			return nil, err
		}
		n := int64(0)
		for cur := a[0]; cur.Kind == KPair; cur = cur.Cdr {
			n++
		}
		in.charge(4 * uint64AsCycles(n))
		return in.NewInt(n), nil
	})
	def("append", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) == 0 {
			return Nil, nil
		}
		out := a[len(a)-1]
		for i := len(a) - 2; i >= 0; i-- {
			items, ok := ListToSlice(a[i])
			if !ok {
				return nil, evalError("append: improper list")
			}
			for j := len(items) - 1; j >= 0; j-- {
				out = in.Cons(items[j], out)
			}
		}
		return out, nil
	})
	def("reverse", func(in *Interp, a []*Obj) (*Obj, error) {
		if err := wantArgs("reverse", a, 1); err != nil {
			return nil, err
		}
		out := Nil
		for cur := a[0]; cur.Kind == KPair; cur = cur.Cdr {
			out = in.Cons(cur.Car, out)
		}
		return out, nil
	})
	def("list-ref", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[1].Kind != KInt {
			return nil, evalError("list-ref: malformed")
		}
		cur := a[0]
		for i := int64(0); i < a[1].Int; i++ {
			if cur.Kind != KPair {
				return nil, evalError("list-ref: index out of range")
			}
			cur = cur.Cdr
		}
		if cur.Kind != KPair {
			return nil, evalError("list-ref: index out of range")
		}
		return cur.Car, nil
	})
	def("list-tail", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[1].Kind != KInt {
			return nil, evalError("list-tail: malformed")
		}
		cur := a[0]
		for i := int64(0); i < a[1].Int; i++ {
			if cur.Kind != KPair {
				return nil, evalError("list-tail: index out of range")
			}
			cur = cur.Cdr
		}
		return cur, nil
	})
	member := func(name string, eq func(a, b *Obj) bool) func(*Interp, []*Obj) (*Obj, error) {
		return func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) != 2 {
				return nil, evalError("%s: want 2 args", name)
			}
			for cur := a[1]; cur.Kind == KPair; cur = cur.Cdr {
				if eq(a[0], cur.Car) {
					return cur, nil
				}
			}
			return False, nil
		}
	}
	def("memq", member("memq", func(a, b *Obj) bool { return a == b || eqv(a, b) }))
	def("member", member("member", equalObj))
	assoc := func(name string, eq func(a, b *Obj) bool) func(*Interp, []*Obj) (*Obj, error) {
		return func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) != 2 {
				return nil, evalError("%s: want 2 args", name)
			}
			for cur := a[1]; cur.Kind == KPair; cur = cur.Cdr {
				if cur.Car.Kind == KPair && eq(a[0], cur.Car.Car) {
					return cur.Car, nil
				}
			}
			return False, nil
		}
	}
	def("assq", assoc("assq", func(a, b *Obj) bool { return a == b || eqv(a, b) }))
	def("assoc", assoc("assoc", equalObj))
	def("map", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 2 {
			return nil, evalError("map: want proc + list(s)")
		}
		lists := make([][]*Obj, len(a)-1)
		n := -1
		for i, l := range a[1:] {
			items, ok := ListToSlice(l)
			if !ok {
				return nil, evalError("map: improper list")
			}
			lists[i] = items
			if n < 0 || len(items) < n {
				n = len(items)
			}
		}
		var out []*Obj
		for i := 0; i < n; i++ {
			args := make([]*Obj, len(lists))
			for j := range lists {
				args[j] = lists[j][i]
			}
			v, err := in.Apply(a[0], args)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return in.List(out...), nil
	})
	def("for-each", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 2 {
			return nil, evalError("for-each: want proc + list(s)")
		}
		items, ok := ListToSlice(a[1])
		if !ok {
			return nil, evalError("for-each: improper list")
		}
		for _, it := range items {
			if _, err := in.Apply(a[0], []*Obj{it}); err != nil {
				return nil, err
			}
		}
		return Unspecified, nil
	})
	def("apply", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 2 {
			return nil, evalError("apply: want proc + args + list")
		}
		last, ok := ListToSlice(a[len(a)-1])
		if !ok {
			return nil, evalError("apply: last argument must be a list")
		}
		args := append(append([]*Obj(nil), a[1:len(a)-1]...), last...)
		return in.Apply(a[0], args)
	})

	// ---- numbers -------------------------------------------------------

	arith := func(name string, intOp func(int64, int64) int64, floOp func(float64, float64) float64, unit int64, unary func(*Interp, *Obj) (*Obj, error)) {
		def(name, func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) == 0 {
				return in.NewInt(unit), nil
			}
			for _, o := range a {
				if err := wantNum(name, o); err != nil {
					return nil, err
				}
			}
			if len(a) == 1 && unary != nil {
				return unary(in, a[0])
			}
			acc := a[0]
			allInt := acc.Kind == KInt
			ai, af := acc.Int, AsFloat(acc)
			for _, o := range a[1:] {
				if o.Kind != KInt {
					allInt = false
				}
				if allInt {
					ai = intOp(ai, o.Int)
				}
				af = floOp(af, AsFloat(o))
			}
			if allInt {
				return in.NewInt(ai), nil
			}
			return in.NewFloat(af), nil
		})
	}
	arith("+", func(a, b int64) int64 { return a + b }, func(a, b float64) float64 { return a + b }, 0, nil)
	arith("*", func(a, b int64) int64 { return a * b }, func(a, b float64) float64 { return a * b }, 1, nil)
	arith("-", func(a, b int64) int64 { return a - b }, func(a, b float64) float64 { return a - b }, 0,
		func(in *Interp, o *Obj) (*Obj, error) {
			if o.Kind == KInt {
				return in.NewInt(-o.Int), nil
			}
			return in.NewFloat(-o.Float), nil
		})
	def("/", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) == 0 {
			return nil, evalError("/: want at least 1 arg")
		}
		for _, o := range a {
			if err := wantNum("/", o); err != nil {
				return nil, err
			}
		}
		if len(a) == 1 {
			return in.NewFloat(1 / AsFloat(a[0])), nil
		}
		// Integer division yielding exact results stays exact.
		if a[0].Kind == KInt {
			acc := a[0].Int
			exact := true
			for _, o := range a[1:] {
				if o.Kind != KInt || o.Int == 0 || acc%o.Int != 0 {
					exact = false
					break
				}
				acc /= o.Int
			}
			if exact {
				return in.NewInt(acc), nil
			}
		}
		af := AsFloat(a[0])
		for _, o := range a[1:] {
			af /= AsFloat(o)
		}
		return in.NewFloat(af), nil
	})
	intBin := func(name string, op func(int64, int64) (int64, error)) {
		def(name, func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) != 2 || a[0].Kind != KInt || a[1].Kind != KInt {
				return nil, evalError("%s: want 2 integers", name)
			}
			v, err := op(a[0].Int, a[1].Int)
			if err != nil {
				return nil, err
			}
			return in.NewInt(v), nil
		})
	}
	intBin("quotient", func(a, b int64) (int64, error) {
		if b == 0 {
			return 0, evalError("quotient: division by zero")
		}
		return a / b, nil
	})
	intBin("remainder", func(a, b int64) (int64, error) {
		if b == 0 {
			return 0, evalError("remainder: division by zero")
		}
		return a % b, nil
	})
	intBin("modulo", func(a, b int64) (int64, error) {
		if b == 0 {
			return 0, evalError("modulo: division by zero")
		}
		m := a % b
		if m != 0 && (m < 0) != (b < 0) {
			m += b
		}
		return m, nil
	})
	intBin("bitwise-and", func(a, b int64) (int64, error) { return a & b, nil })
	intBin("bitwise-ior", func(a, b int64) (int64, error) { return a | b, nil })
	intBin("bitwise-xor", func(a, b int64) (int64, error) { return a ^ b, nil })
	intBin("arithmetic-shift", func(a, b int64) (int64, error) {
		if b >= 0 {
			return a << uint(b), nil
		}
		return a >> uint(-b), nil
	})

	cmp := func(name string, ok func(a, b float64) bool) {
		def(name, func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) < 2 {
				return nil, evalError("%s: want at least 2 args", name)
			}
			for _, o := range a {
				if err := wantNum(name, o); err != nil {
					return nil, err
				}
			}
			for i := 0; i+1 < len(a); i++ {
				if !ok(AsFloat(a[i]), AsFloat(a[i+1])) {
					return False, nil
				}
			}
			return True, nil
		})
	}
	cmp("=", func(a, b float64) bool { return a == b })
	cmp("<", func(a, b float64) bool { return a < b })
	cmp(">", func(a, b float64) bool { return a > b })
	cmp("<=", func(a, b float64) bool { return a <= b })
	cmp(">=", func(a, b float64) bool { return a >= b })

	def("min", minMax("min", func(a, b float64) bool { return a < b }))
	def("max", minMax("max", func(a, b float64) bool { return a > b }))

	numPred := func(name string, ok func(*Obj) bool) {
		def(name, func(in *Interp, a []*Obj) (*Obj, error) {
			if err := wantArgs(name, a, 1); err != nil {
				return nil, err
			}
			return Boolean(ok(a[0])), nil
		})
	}
	numPred("zero?", func(o *Obj) bool { return IsNumber(o) && AsFloat(o) == 0 })
	numPred("positive?", func(o *Obj) bool { return IsNumber(o) && AsFloat(o) > 0 })
	numPred("negative?", func(o *Obj) bool { return IsNumber(o) && AsFloat(o) < 0 })
	numPred("even?", func(o *Obj) bool { return o.Kind == KInt && o.Int%2 == 0 })
	numPred("odd?", func(o *Obj) bool { return o.Kind == KInt && o.Int%2 != 0 })
	numPred("number?", IsNumber)
	numPred("integer?", func(o *Obj) bool {
		return o.Kind == KInt || (o.Kind == KFloat && o.Float == math.Trunc(o.Float))
	})
	numPred("real?", IsNumber)
	numPred("exact?", func(o *Obj) bool { return o.Kind == KInt })
	numPred("inexact?", func(o *Obj) bool { return o.Kind == KFloat })

	def("add1", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || !IsNumber(a[0]) {
			return nil, evalError("add1: want a number")
		}
		if a[0].Kind == KInt {
			return in.NewInt(a[0].Int + 1), nil
		}
		return in.NewFloat(a[0].Float + 1), nil
	})
	def("sub1", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || !IsNumber(a[0]) {
			return nil, evalError("sub1: want a number")
		}
		if a[0].Kind == KInt {
			return in.NewInt(a[0].Int - 1), nil
		}
		return in.NewFloat(a[0].Float - 1), nil
	})
	def("abs", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || !IsNumber(a[0]) {
			return nil, evalError("abs: want a number")
		}
		if a[0].Kind == KInt {
			if a[0].Int < 0 {
				return in.NewInt(-a[0].Int), nil
			}
			return a[0], nil
		}
		return in.NewFloat(math.Abs(a[0].Float)), nil
	})

	mathFn := func(name string, fn func(float64) float64) {
		def(name, func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) != 1 || !IsNumber(a[0]) {
				return nil, evalError("%s: want a number", name)
			}
			in.charge(60) // libm call
			return in.NewFloat(fn(AsFloat(a[0]))), nil
		})
	}
	mathFn("sqrt", math.Sqrt)
	mathFn("sin", math.Sin)
	mathFn("cos", math.Cos)
	mathFn("exp", math.Exp)
	mathFn("log", math.Log)
	mathFn("atan", math.Atan)

	def("expt", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || !IsNumber(a[0]) || !IsNumber(a[1]) {
			return nil, evalError("expt: want 2 numbers")
		}
		if a[0].Kind == KInt && a[1].Kind == KInt && a[1].Int >= 0 {
			out := int64(1)
			for i := int64(0); i < a[1].Int; i++ {
				out *= a[0].Int
			}
			return in.NewInt(out), nil
		}
		return in.NewFloat(math.Pow(AsFloat(a[0]), AsFloat(a[1]))), nil
	})
	roundFn := func(name string, fn func(float64) float64) {
		def(name, func(in *Interp, a []*Obj) (*Obj, error) {
			if len(a) != 1 || !IsNumber(a[0]) {
				return nil, evalError("%s: want a number", name)
			}
			if a[0].Kind == KInt {
				return a[0], nil
			}
			return in.NewFloat(fn(a[0].Float)), nil
		})
	}
	roundFn("floor", math.Floor)
	roundFn("ceiling", math.Ceil)
	roundFn("truncate", math.Trunc)
	roundFn("round", math.RoundToEven)

	def("exact->inexact", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || !IsNumber(a[0]) {
			return nil, evalError("exact->inexact: want a number")
		}
		return in.NewFloat(AsFloat(a[0])), nil
	})
	def("inexact->exact", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || !IsNumber(a[0]) {
			return nil, evalError("inexact->exact: want a number")
		}
		return in.NewInt(int64(AsFloat(a[0]))), nil
	})
	def("number->string", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 1 || !IsNumber(a[0]) {
			return nil, evalError("number->string: want a number")
		}
		return in.NewString([]byte(WriteString(a[0]))), nil
	})
	def("string->number", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("string->number: want a string")
		}
		s := string(a[0].Str)
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return in.NewInt(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return in.NewFloat(f), nil
		}
		return False, nil
	})

	// ---- predicates ----------------------------------------------------

	numPred("null?", func(o *Obj) bool { return o.Kind == KNil })
	numPred("pair?", func(o *Obj) bool { return o.Kind == KPair })
	numPred("list?", func(o *Obj) bool { _, ok := ListToSlice(o); return ok })
	numPred("symbol?", func(o *Obj) bool { return o.Kind == KSymbol })
	numPred("string?", func(o *Obj) bool { return o.Kind == KString })
	numPred("vector?", func(o *Obj) bool { return o.Kind == KVector })
	numPred("char?", func(o *Obj) bool { return o.Kind == KChar })
	numPred("boolean?", func(o *Obj) bool { return o.Kind == KBool })
	numPred("procedure?", func(o *Obj) bool { return o.Kind == KClosure || o.Kind == KBuiltin })
	numPred("eof-object?", func(o *Obj) bool { return o.Kind == KEOF })

	def("not", func(in *Interp, a []*Obj) (*Obj, error) {
		if err := wantArgs("not", a, 1); err != nil {
			return nil, err
		}
		return Boolean(!Truthy(a[0])), nil
	})
	def("eq?", func(in *Interp, a []*Obj) (*Obj, error) {
		if err := wantArgs("eq?", a, 2); err != nil {
			return nil, err
		}
		return Boolean(a[0] == a[1] || eqv(a[0], a[1])), nil
	})
	def("eqv?", func(in *Interp, a []*Obj) (*Obj, error) {
		if err := wantArgs("eqv?", a, 2); err != nil {
			return nil, err
		}
		return Boolean(eqv(a[0], a[1])), nil
	})
	def("equal?", func(in *Interp, a []*Obj) (*Obj, error) {
		if err := wantArgs("equal?", a, 2); err != nil {
			return nil, err
		}
		return Boolean(equalObj(a[0], a[1])), nil
	})

	// ---- vectors ---------------------------------------------------------

	def("vector", func(in *Interp, a []*Obj) (*Obj, error) {
		return in.NewVector(append([]*Obj(nil), a...)), nil
	})
	def("make-vector", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 1 || a[0].Kind != KInt || a[0].Int < 0 {
			return nil, evalError("make-vector: want a size")
		}
		fill := Unspecified
		if len(a) >= 2 {
			fill = a[1]
		}
		v := make([]*Obj, a[0].Int)
		for i := range v {
			v[i] = fill
		}
		in.charge(2 * uint64AsCycles(a[0].Int))
		return in.NewVector(v), nil
	})
	def("vector-ref", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KVector || a[1].Kind != KInt {
			return nil, evalError("vector-ref: malformed")
		}
		i := a[1].Int
		if i < 0 || i >= int64(len(a[0].Vec)) {
			return nil, evalError("vector-ref: index %d out of range [0,%d)", i, len(a[0].Vec))
		}
		return a[0].Vec[i], nil
	})
	def("vector-set!", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 3 || a[0].Kind != KVector || a[1].Kind != KInt {
			return nil, evalError("vector-set!: malformed")
		}
		i := a[1].Int
		if i < 0 || i >= int64(len(a[0].Vec)) {
			return nil, evalError("vector-set!: index %d out of range [0,%d)", i, len(a[0].Vec))
		}
		in.gc.WriteBarrier(a[0])
		a[0].Vec[i] = a[2]
		return Unspecified, nil
	})
	def("vector-length", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KVector {
			return nil, evalError("vector-length: want a vector")
		}
		return in.NewInt(int64(len(a[0].Vec))), nil
	})
	def("vector-fill!", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KVector {
			return nil, evalError("vector-fill!: malformed")
		}
		in.gc.WriteBarrier(a[0])
		for i := range a[0].Vec {
			a[0].Vec[i] = a[1]
		}
		in.charge(2 * uint64AsCycles(int64(len(a[0].Vec))))
		return Unspecified, nil
	})
	def("vector->list", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KVector {
			return nil, evalError("vector->list: want a vector")
		}
		return in.List(a[0].Vec...), nil
	})
	def("list->vector", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 {
			return nil, evalError("list->vector: want a list")
		}
		items, ok := ListToSlice(a[0])
		if !ok {
			return nil, evalError("list->vector: improper list")
		}
		return in.NewVector(items), nil
	})

	// ---- strings & chars -------------------------------------------------

	def("string-length", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("string-length: want a string")
		}
		return in.NewInt(int64(len(a[0].Str))), nil
	})
	def("string-ref", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KString || a[1].Kind != KInt {
			return nil, evalError("string-ref: malformed")
		}
		i := a[1].Int
		if i < 0 || i >= int64(len(a[0].Str)) {
			return nil, evalError("string-ref: index out of range")
		}
		return in.NewChar(rune(a[0].Str[i])), nil
	})
	def("string-set!", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 3 || a[0].Kind != KString || a[1].Kind != KInt || a[2].Kind != KChar {
			return nil, evalError("string-set!: malformed")
		}
		i := a[1].Int
		if i < 0 || i >= int64(len(a[0].Str)) {
			return nil, evalError("string-set!: index out of range")
		}
		in.gc.WriteBarrier(a[0])
		a[0].Str[i] = byte(a[2].Int)
		return Unspecified, nil
	})
	def("make-string", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 1 || a[0].Kind != KInt || a[0].Int < 0 {
			return nil, evalError("make-string: want a size")
		}
		fill := byte(' ')
		if len(a) >= 2 && a[1].Kind == KChar {
			fill = byte(a[1].Int)
		}
		b := make([]byte, a[0].Int)
		for i := range b {
			b[i] = fill
		}
		return in.NewString(b), nil
	})
	def("string-append", func(in *Interp, a []*Obj) (*Obj, error) {
		var b []byte
		for _, o := range a {
			if o.Kind != KString {
				return nil, evalError("string-append: want strings")
			}
			b = append(b, o.Str...)
		}
		in.charge(uint64AsCycles(int64(len(b))))
		return in.NewString(b), nil
	})
	def("substring", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) < 2 || a[0].Kind != KString || a[1].Kind != KInt {
			return nil, evalError("substring: malformed")
		}
		lo := a[1].Int
		hi := int64(len(a[0].Str))
		if len(a) >= 3 {
			if a[2].Kind != KInt {
				return nil, evalError("substring: malformed")
			}
			hi = a[2].Int
		}
		if lo < 0 || hi > int64(len(a[0].Str)) || lo > hi {
			return nil, evalError("substring: range out of bounds")
		}
		return in.NewString(append([]byte(nil), a[0].Str[lo:hi]...)), nil
	})
	def("string=?", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KString || a[1].Kind != KString {
			return nil, evalError("string=?: want 2 strings")
		}
		return Boolean(string(a[0].Str) == string(a[1].Str)), nil
	})
	def("string->symbol", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("string->symbol: want a string")
		}
		return in.Intern(string(a[0].Str)), nil
	})
	def("symbol->string", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KSymbol {
			return nil, evalError("symbol->string: want a symbol")
		}
		return in.NewString(append([]byte(nil), a[0].Str...)), nil
	})
	def("string->list", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("string->list: want a string")
		}
		chars := make([]*Obj, len(a[0].Str))
		for i, c := range a[0].Str {
			chars[i] = in.NewChar(rune(c))
		}
		return in.List(chars...), nil
	})
	def("list->string", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 {
			return nil, evalError("list->string: want a list")
		}
		items, ok := ListToSlice(a[0])
		if !ok {
			return nil, evalError("list->string: improper list")
		}
		b := make([]byte, len(items))
		for i, c := range items {
			if c.Kind != KChar {
				return nil, evalError("list->string: non-char element")
			}
			b[i] = byte(c.Int)
		}
		return in.NewString(b), nil
	})
	def("string-copy", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("string-copy: want a string")
		}
		return in.NewString(append([]byte(nil), a[0].Str...)), nil
	})
	def("char->integer", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KChar {
			return nil, evalError("char->integer: want a char")
		}
		return in.NewInt(a[0].Int), nil
	})
	def("integer->char", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KInt {
			return nil, evalError("integer->char: want an integer")
		}
		return in.NewChar(rune(a[0].Int)), nil
	})
	def("char=?", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 2 || a[0].Kind != KChar || a[1].Kind != KChar {
			return nil, evalError("char=?: want 2 chars")
		}
		return Boolean(a[0].Int == a[1].Int), nil
	})

	// ---- I/O and system --------------------------------------------------

	def("display", func(in *Interp, a []*Obj) (*Obj, error) {
		for _, o := range a {
			s := DisplayString(o)
			in.charge(uint64AsCycles(int64(len(s))))
			in.writeOut([]byte(s))
		}
		return Unspecified, nil
	})
	def("write", func(in *Interp, a []*Obj) (*Obj, error) {
		for _, o := range a {
			s := WriteString(o)
			in.charge(uint64AsCycles(int64(len(s))))
			in.writeOut([]byte(s))
		}
		return Unspecified, nil
	})
	def("newline", func(in *Interp, a []*Obj) (*Obj, error) {
		in.writeOut([]byte{'\n'})
		return Unspecified, nil
	})
	def("write-char", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KChar {
			return nil, evalError("write-char: want a char")
		}
		in.writeOut([]byte{byte(a[0].Int)})
		return Unspecified, nil
	})
	def("write-string", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("write-string: want a string")
		}
		in.writeOut(a[0].Str)
		return Unspecified, nil
	})
	def("void", func(in *Interp, a []*Obj) (*Obj, error) { return Unspecified, nil })
	def("error", func(in *Interp, a []*Obj) (*Obj, error) {
		parts := make([]string, len(a))
		for i, o := range a {
			parts[i] = DisplayString(o)
		}
		msg := ""
		for i, p := range parts {
			if i > 0 {
				msg += " "
			}
			msg += p
		}
		return nil, evalError("error: %s", msg)
	})

	// getpid / current-inexact-milliseconds ride the vdso fast path, like
	// glibc would route them.
	def("getpid", func(in *Interp, a []*Obj) (*Obj, error) {
		in.flushCompute()
		v, errno := in.os.VDSO(linuxabi.SysGetpid)
		if errno != linuxabi.OK {
			return nil, evalError("getpid: %v", errno)
		}
		return in.NewInt(int64(v)), nil
	})
	def("current-inexact-milliseconds", func(in *Interp, a []*Obj) (*Obj, error) {
		in.flushCompute()
		v, errno := in.os.VDSO(linuxabi.SysGettimeofday)
		if errno != linuxabi.OK {
			return nil, evalError("current-inexact-milliseconds: %v", errno)
		}
		return in.NewFloat(float64(v) / 1000.0), nil
	})
	def("file->string", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("file->string: want a path")
		}
		data, err := in.readFile(string(a[0].Str))
		if err != nil {
			return nil, err
		}
		return in.NewString(data), nil
	})
	def("file-size", func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) != 1 || a[0].Kind != KString {
			return nil, evalError("file-size: want a path")
		}
		in.flushCompute()
		res := in.Sys(linuxabi.Call{Num: linuxabi.SysStat, Path: string(a[0].Str)})
		if !res.Ok() {
			return nil, evalError("file-size: %v", res.Err)
		}
		st, ok := linuxabi.DecodeStat(res.Data)
		if !ok {
			return nil, evalError("file-size: malformed stat data")
		}
		return in.NewInt(int64(st.Size)), nil
	})
	def("collect-garbage", func(in *Interp, a []*Obj) (*Obj, error) {
		in.gc.Collect()
		return Unspecified, nil
	})
}

func minMax(name string, better func(a, b float64) bool) func(*Interp, []*Obj) (*Obj, error) {
	return func(in *Interp, a []*Obj) (*Obj, error) {
		if len(a) == 0 {
			return nil, evalError("%s: want at least 1 arg", name)
		}
		best := a[0]
		for _, o := range a[1:] {
			if !IsNumber(o) {
				return nil, evalError("%s: not a number", name)
			}
			if better(AsFloat(o), AsFloat(best)) {
				best = o
			}
		}
		return best, nil
	}
}

// uint64AsCycles scales data-size charges safely.
func uint64AsCycles(n int64) cycles.Cycles {
	if n < 0 {
		return 0
	}
	return cycles.Cycles(n)
}
