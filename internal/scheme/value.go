// Package scheme is the runtime system Multiverse hybridizes in this
// reproduction: a from-scratch Scheme interpreter standing in for Racket.
//
// Like Racket, it is a dynamic-language runtime whose execution is full of
// low-level OS interactions (the paper's Figure 10 point): its heap is
// built from mmap'd segments, its garbage collector uses mprotect and
// SIGSEGV-driven write barriers (the SenoraGC/precise-GC discipline), its
// cooperative green threads ride on setitimer/poll, and it loads its
// prelude through the filesystem. Every one of those interactions goes
// through the simulated Linux ABI — natively, virtualized, or forwarded
// from kernel mode when hybridized.
package scheme

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates heap objects.
type Kind uint8

// Object kinds.
const (
	KNil Kind = iota
	KBool
	KInt
	KFloat
	KChar
	KSymbol
	KString
	KPair
	KVector
	KClosure
	KBuiltin
	KUnspecified
	KEOF
	KPort
)

// Obj is one Scheme value. Objects live in GC segments: Addr is the
// simulated heap address of the cell, and seg points at its segment for
// the write barrier. Immediate-like values (small ints, booleans, nil)
// are preallocated and have no segment.
type Obj struct {
	Kind Kind

	Int   int64
	Float float64
	Str   []byte // KString (mutable, as in Scheme), KSymbol (name)
	Car   *Obj
	Cdr   *Obj
	Vec   []*Obj

	// ext carries the fields only procedures and interned symbols use.
	// Those kinds are rare next to the pairs, floats, and strings that
	// churn through the heap, and every heap cell is an Obj in a
	// per-segment arena — so keeping Obj lean is what the arena
	// allocation, its zeroing, and the host collector's scans pay for.
	// Splitting these seven fields off nearly halves the struct.
	ext *objExt

	Addr uint64 // simulated heap address (0 for immediates)
	seg  *segment

	// special is the evaluator's dispatch code for special-form symbols
	// (spIf, spLet, ...), stamped at intern time so the hot loop
	// dispatches on one byte instead of converting and comparing the
	// symbol name on every combination.
	special uint8

}

// objExt is the side car of closures (Params..Env), builtins (Name, Fn),
// and interned symbols (Name, cell). Creation sites attach it; every
// consumer dispatches on Kind first, and all three kinds are built
// exclusively through paths that set ext, so consumers never see it nil.
type objExt struct {
	// Closure fields.
	Params []*Obj // parameter symbols
	Rest   *Obj   // rest parameter symbol or nil
	Body   []*Obj
	Env    *Frame

	// Builtin (and display) name.
	Name string
	Fn   func(in *Interp, args []*Obj) (*Obj, error)

	// cell caches a symbol's global binding slot (see gcell). Symbols
	// are interned per-Interp, so the cache cannot cross interpreters.
	cell *gcell
}

// Special-form codes. spNone marks ordinary symbols.
const (
	spNone uint8 = iota
	spQuote
	spIf
	spDefine
	spSet
	spLambda
	spBegin
	spLet
	spLetStar
	spLetrec
	spCond
	spCase
	spAnd
	spOr
	spWhen
	spUnless
	spDo
	spQuasiquote
)

// specialCodes maps special-form names to their dispatch codes.
var specialCodes = map[string]uint8{
	"quote":      spQuote,
	"if":         spIf,
	"define":     spDefine,
	"set!":       spSet,
	"lambda":     spLambda,
	"begin":      spBegin,
	"let":        spLet,
	"let*":       spLetStar,
	"letrec":     spLetrec,
	"letrec*":    spLetrec,
	"cond":       spCond,
	"case":       spCase,
	"and":        spAnd,
	"or":         spOr,
	"when":       spWhen,
	"unless":     spUnless,
	"do":         spDo,
	"quasiquote": spQuasiquote,
}

// Preallocated immediates.
var (
	Nil         = &Obj{Kind: KNil}
	True        = &Obj{Kind: KBool, Int: 1}
	False       = &Obj{Kind: KBool}
	Unspecified = &Obj{Kind: KUnspecified}
	EOFObject   = &Obj{Kind: KEOF}
)

// Boolean wraps a Go bool.
func Boolean(b bool) *Obj {
	if b {
		return True
	}
	return False
}

// Truthy follows Scheme: everything but #f is true.
func Truthy(o *Obj) bool { return o != False }

// IsNumber reports int or float.
func IsNumber(o *Obj) bool { return o.Kind == KInt || o.Kind == KFloat }

// AsFloat widens a number to float64.
func AsFloat(o *Obj) float64 {
	if o.Kind == KInt {
		return float64(o.Int)
	}
	return o.Float
}

// frameInline is how many bindings a frame holds inline. Nearly every
// frame (lambda application, let, loop bodies) binds a handful of
// symbols; only wide frames — effectively just the global environment —
// spill into a map.
const frameInline = 8

// Frame is one lexical environment frame. Frames are heap-allocated
// conceptually but represented natively; the GC treats the frame chain as
// roots through the interpreter's thread state. Bindings live in a fixed
// inline array scanned by symbol identity — symbols are interned, so a
// pointer compare replaces the map hash the hot path used to pay — with a
// spill map for frames wider than frameInline.
type Frame struct {
	keys   [frameInline]*Obj
	vals   [frameInline]*Obj
	n      int
	big    map[*Obj]*gcell // spill for wide frames (the global env)
	parent *Frame

	// escaped pins the frame against recycling: it is set the moment the
	// frame becomes reachable from a closure (the only way a frame can
	// outlive the evaluation that created it). See Interp.newFrame.
	escaped bool

	// root marks the interpreter's global frame — the one wide frame
	// whose spilled bindings are worth caching on the symbols themselves
	// (Obj.cell). Recycled and user frames are never root, so a stale
	// symbol cache can never alias a reused frame.
	root bool

	// loopc ties a named-let loop closure's lifetime to this frame: the
	// closure is reachable only through this frame's binding of the loop
	// name, and every path that could leak it out (value-position lookup,
	// capture by makeClosure) marks the frame escaped first. So when the
	// frame comes back unescaped, the closure is provably dead and goes
	// back on the interpreter's closure free list with it.
	loopc *Obj
}

// gcell is one spilled binding slot. The indirection gives a binding a
// stable identity across set!/define, so a symbol can cache a pointer to
// its global cell and hot global lookups skip the map hash entirely.
type gcell struct{ v *Obj }

// NewFrame makes a child frame. No map is allocated: small frames are one
// allocation total.
func NewFrame(parent *Frame) *Frame {
	return &Frame{parent: parent}
}

// markEscaped pins f and every ancestor against recycling. Called when a
// frame is stored into a closure's Env: from then on its lifetime is the
// closure's, not the evaluation's. The walk stops at the first frame
// already marked — escaped implies all ancestors escaped, since this is
// the only place the flag is set and it always walks the full chain.
func markEscaped(f *Frame) {
	for ; f != nil && !f.escaped; f = f.parent {
		f.escaped = true
	}
}

// newFrame returns a child frame, reusing one from the free list when
// possible. Recycling is invisible to Scheme code and to the simulated
// GC: the collector discovers frames only through closure environments,
// and a frame that was ever captured by a closure is marked escaped and
// never released (see markEscaped / releaseFrame). Stale key/val
// pointers in a reused frame are unreachable — n==0 gates every scan.
func (in *Interp) newFrame(parent *Frame) *Frame {
	if n := len(in.freeFrames); n > 0 {
		f := in.freeFrames[n-1]
		in.freeFrames[n-1] = nil
		in.freeFrames = in.freeFrames[:n-1]
		f.n = 0
		f.big = nil
		f.parent = parent
		f.escaped = false
		return f
	}
	return &Frame{parent: parent}
}

// releaseFrame returns f to the free list unless it escaped into a
// closure. Callers guarantee f is off every live environment chain.
func (in *Interp) releaseFrame(f *Frame) {
	if f == nil || f.escaped {
		return
	}
	if c := f.loopc; c != nil {
		f.loopc = nil
		in.freeClosures = append(in.freeClosures, c)
	}
	in.freeFrames = append(in.freeFrames, f)
}

// Lookup resolves a symbol through the frame chain.
func (f *Frame) Lookup(sym *Obj) (*Obj, bool) {
	for fr := f; fr != nil; fr = fr.parent {
		for i := 0; i < fr.n; i++ {
			if fr.keys[i] == sym {
				return fr.vals[i], true
			}
		}
		if fr.big != nil {
			if fr.root && sym.ext.cell != nil {
				return sym.ext.cell.v, true
			}
			if c, ok := fr.big[sym]; ok {
				if fr.root {
					sym.ext.cell = c
				}
				return c.v, true
			}
		}
	}
	return nil, false
}

// Define binds a symbol in this frame.
func (f *Frame) Define(sym *Obj, v *Obj) {
	for i := 0; i < f.n; i++ {
		if f.keys[i] == sym {
			f.vals[i] = v
			return
		}
	}
	if f.big != nil {
		if c, ok := f.big[sym]; ok {
			c.v = v
			return
		}
		c := &gcell{v: v}
		f.big[sym] = c
		if f.root {
			sym.ext.cell = c
		}
		return
	}
	if f.n < frameInline {
		f.keys[f.n] = sym
		f.vals[f.n] = v
		f.n++
		return
	}
	f.big = make(map[*Obj]*gcell, 4*frameInline)
	c := &gcell{v: v}
	f.big[sym] = c
	if f.root {
		sym.ext.cell = c
	}
}

// Set assigns an existing binding, reporting whether it was found.
func (f *Frame) Set(sym *Obj, v *Obj) bool {
	for fr := f; fr != nil; fr = fr.parent {
		for i := 0; i < fr.n; i++ {
			if fr.keys[i] == sym {
				fr.vals[i] = v
				return true
			}
		}
		if fr.big != nil {
			if fr.root && sym.ext.cell != nil {
				sym.ext.cell.v = v
				return true
			}
			if c, ok := fr.big[sym]; ok {
				c.v = v
				return true
			}
		}
	}
	return false
}

// each visits every binding in this frame (not the chain) — the GC's
// frame marking uses it.
func (f *Frame) each(fn func(sym, v *Obj)) {
	for i := 0; i < f.n; i++ {
		fn(f.keys[i], f.vals[i])
	}
	for k, c := range f.big {
		fn(k, c.v)
	}
}

// ListToSlice converts a proper list to a slice; ok is false for improper
// lists.
func ListToSlice(o *Obj) ([]*Obj, bool) {
	var out []*Obj
	for cur := o; ; {
		switch cur.Kind {
		case KNil:
			return out, true
		case KPair:
			out = append(out, cur.Car)
			cur = cur.Cdr
		default:
			return out, false
		}
	}
}

// WriteString renders o in (write)-style notation.
func WriteString(o *Obj) string {
	var b strings.Builder
	writeObj(&b, o, true, make(map[*Obj]bool))
	return b.String()
}

// DisplayString renders o in (display)-style notation.
func DisplayString(o *Obj) string {
	var b strings.Builder
	writeObj(&b, o, false, make(map[*Obj]bool))
	return b.String()
}

func writeObj(b *strings.Builder, o *Obj, write bool, seen map[*Obj]bool) {
	if o == nil {
		b.WriteString("#<null>")
		return
	}
	switch o.Kind {
	case KNil:
		b.WriteString("()")
	case KBool:
		if o == True {
			b.WriteString("#t")
		} else {
			b.WriteString("#f")
		}
	case KInt:
		b.WriteString(strconv.FormatInt(o.Int, 10))
	case KFloat:
		s := strconv.FormatFloat(o.Float, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		b.WriteString(s)
	case KChar:
		if write {
			b.WriteString("#\\")
		}
		b.WriteRune(rune(o.Int))
	case KSymbol:
		b.Write(o.Str)
	case KString:
		if write {
			b.WriteString(strconv.Quote(string(o.Str)))
		} else {
			b.Write(o.Str)
		}
	case KPair:
		if seen[o] {
			b.WriteString("#<cycle>")
			return
		}
		seen[o] = true
		b.WriteByte('(')
		cur := o
		first := true
		for cur.Kind == KPair {
			if !first {
				b.WriteByte(' ')
			}
			writeObj(b, cur.Car, write, seen)
			first = false
			cur = cur.Cdr
			if seen[cur] {
				break
			}
		}
		if cur.Kind != KNil {
			b.WriteString(" . ")
			writeObj(b, cur, write, seen)
		}
		b.WriteByte(')')
		delete(seen, o)
	case KVector:
		b.WriteString("#(")
		for i, e := range o.Vec {
			if i > 0 {
				b.WriteByte(' ')
			}
			writeObj(b, e, write, seen)
		}
		b.WriteByte(')')
	case KClosure:
		b.WriteString("#<procedure>")
	case KBuiltin:
		fmt.Fprintf(b, "#<procedure:%s>", o.ext.Name)
	case KUnspecified:
		b.WriteString("#<void>")
	case KEOF:
		b.WriteString("#<eof>")
	default:
		fmt.Fprintf(b, "#<unknown:%d>", o.Kind)
	}
}
