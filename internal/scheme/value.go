// Package scheme is the runtime system Multiverse hybridizes in this
// reproduction: a from-scratch Scheme interpreter standing in for Racket.
//
// Like Racket, it is a dynamic-language runtime whose execution is full of
// low-level OS interactions (the paper's Figure 10 point): its heap is
// built from mmap'd segments, its garbage collector uses mprotect and
// SIGSEGV-driven write barriers (the SenoraGC/precise-GC discipline), its
// cooperative green threads ride on setitimer/poll, and it loads its
// prelude through the filesystem. Every one of those interactions goes
// through the simulated Linux ABI — natively, virtualized, or forwarded
// from kernel mode when hybridized.
package scheme

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates heap objects.
type Kind uint8

// Object kinds.
const (
	KNil Kind = iota
	KBool
	KInt
	KFloat
	KChar
	KSymbol
	KString
	KPair
	KVector
	KClosure
	KBuiltin
	KUnspecified
	KEOF
	KPort
)

// Obj is one Scheme value. Objects live in GC segments: Addr is the
// simulated heap address of the cell, and seg points at its segment for
// the write barrier. Immediate-like values (small ints, booleans, nil)
// are preallocated and have no segment.
type Obj struct {
	Kind Kind

	Int   int64
	Float float64
	Str   []byte // KString (mutable, as in Scheme), KSymbol (name)
	Car   *Obj
	Cdr   *Obj
	Vec   []*Obj

	// Closure fields.
	Params []*Obj // parameter symbols
	Rest   *Obj   // rest parameter symbol or nil
	Body   []*Obj
	Env    *Frame

	// Builtin fields.
	Name string
	Fn   func(in *Interp, args []*Obj) (*Obj, error)

	Addr uint64 // simulated heap address (0 for immediates)
	seg  *segment
	mark bool
}

// Preallocated immediates.
var (
	Nil         = &Obj{Kind: KNil}
	True        = &Obj{Kind: KBool, Int: 1}
	False       = &Obj{Kind: KBool}
	Unspecified = &Obj{Kind: KUnspecified}
	EOFObject   = &Obj{Kind: KEOF}
)

// Boolean wraps a Go bool.
func Boolean(b bool) *Obj {
	if b {
		return True
	}
	return False
}

// Truthy follows Scheme: everything but #f is true.
func Truthy(o *Obj) bool { return o != False }

// IsNumber reports int or float.
func IsNumber(o *Obj) bool { return o.Kind == KInt || o.Kind == KFloat }

// AsFloat widens a number to float64.
func AsFloat(o *Obj) float64 {
	if o.Kind == KInt {
		return float64(o.Int)
	}
	return o.Float
}

// Frame is one lexical environment frame. Frames are heap-allocated
// conceptually but represented natively; the GC treats the frame chain as
// roots through the interpreter's thread state.
type Frame struct {
	vars   map[*Obj]*Obj // symbol -> value
	parent *Frame
}

// NewFrame makes a child frame.
func NewFrame(parent *Frame) *Frame {
	return &Frame{vars: make(map[*Obj]*Obj, 8), parent: parent}
}

// Lookup resolves a symbol through the frame chain.
func (f *Frame) Lookup(sym *Obj) (*Obj, bool) {
	for fr := f; fr != nil; fr = fr.parent {
		if v, ok := fr.vars[sym]; ok {
			return v, true
		}
	}
	return nil, false
}

// Define binds a symbol in this frame.
func (f *Frame) Define(sym *Obj, v *Obj) { f.vars[sym] = v }

// Set assigns an existing binding, reporting whether it was found.
func (f *Frame) Set(sym *Obj, v *Obj) bool {
	for fr := f; fr != nil; fr = fr.parent {
		if _, ok := fr.vars[sym]; ok {
			fr.vars[sym] = v
			return true
		}
	}
	return false
}

// ListToSlice converts a proper list to a slice; ok is false for improper
// lists.
func ListToSlice(o *Obj) ([]*Obj, bool) {
	var out []*Obj
	for cur := o; ; {
		switch cur.Kind {
		case KNil:
			return out, true
		case KPair:
			out = append(out, cur.Car)
			cur = cur.Cdr
		default:
			return out, false
		}
	}
}

// WriteString renders o in (write)-style notation.
func WriteString(o *Obj) string {
	var b strings.Builder
	writeObj(&b, o, true, make(map[*Obj]bool))
	return b.String()
}

// DisplayString renders o in (display)-style notation.
func DisplayString(o *Obj) string {
	var b strings.Builder
	writeObj(&b, o, false, make(map[*Obj]bool))
	return b.String()
}

func writeObj(b *strings.Builder, o *Obj, write bool, seen map[*Obj]bool) {
	if o == nil {
		b.WriteString("#<null>")
		return
	}
	switch o.Kind {
	case KNil:
		b.WriteString("()")
	case KBool:
		if o == True {
			b.WriteString("#t")
		} else {
			b.WriteString("#f")
		}
	case KInt:
		b.WriteString(strconv.FormatInt(o.Int, 10))
	case KFloat:
		s := strconv.FormatFloat(o.Float, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") && !strings.Contains(s, "Inf") && !strings.Contains(s, "NaN") {
			s += ".0"
		}
		b.WriteString(s)
	case KChar:
		if write {
			b.WriteString("#\\")
		}
		b.WriteRune(rune(o.Int))
	case KSymbol:
		b.Write(o.Str)
	case KString:
		if write {
			b.WriteString(strconv.Quote(string(o.Str)))
		} else {
			b.Write(o.Str)
		}
	case KPair:
		if seen[o] {
			b.WriteString("#<cycle>")
			return
		}
		seen[o] = true
		b.WriteByte('(')
		cur := o
		first := true
		for cur.Kind == KPair {
			if !first {
				b.WriteByte(' ')
			}
			writeObj(b, cur.Car, write, seen)
			first = false
			cur = cur.Cdr
			if seen[cur] {
				break
			}
		}
		if cur.Kind != KNil {
			b.WriteString(" . ")
			writeObj(b, cur, write, seen)
		}
		b.WriteByte(')')
		delete(seen, o)
	case KVector:
		b.WriteString("#(")
		for i, e := range o.Vec {
			if i > 0 {
				b.WriteByte(' ')
			}
			writeObj(b, e, write, seen)
		}
		b.WriteByte(')')
	case KClosure:
		b.WriteString("#<procedure>")
	case KBuiltin:
		fmt.Fprintf(b, "#<procedure:%s>", o.Name)
	case KUnspecified:
		b.WriteString("#<void>")
	case KEOF:
		b.WriteString("#<eof>")
	default:
		fmt.Fprintf(b, "#<unknown:%d>", o.Kind)
	}
}
