package scheme

import (
	"fmt"
	"sort"

	"multiverse/internal/linuxabi"
	"multiverse/internal/ros"
	"multiverse/internal/telemetry"
)

// The collector stands in for the SenoraGC conservative collector the
// paper's Racket port uses. Its OS discipline is the point of the
// reproduction:
//
//   - the heap is built from mmap'd segments (heap creation dominates the
//     startup syscall profile, Figure 11);
//   - after a collection, surviving segments are write-protected with
//     mprotect; the first mutation in a protected segment takes a SIGSEGV
//     that the registered handler resolves by un-protecting the segment —
//     "mmap(), munmap(), and mprotect() arrange memory protections to
//     create SIGSEGVs for the garbage collector" (Figure 12 discussion);
//   - fully dead segments are returned with munmap;
//   - each collection ends with a getrusage call, as runtime accounting
//     does.
//
// Collection is mark-and-non-moving-sweep at whole-segment granularity:
// cells are never reused individually, so a reachable object missed by
// the root scan (the conservative caveat) can never be corrupted — its
// segment merely stays categorized as live or, if unmapped, drops out of
// barrier bookkeeping.
type GC struct {
	in *Interp

	backend  memBackend          // provides new segments (legacy or AK)
	segments map[uint64]*segment // by base address
	nursery  *segment

	allocBytes uint64 // since last collection
	threshold  uint64
	liveBytes  uint64

	roots      []*Obj
	sinceMajor int

	// fastProtect, when non-nil, un-protects merged user pages by direct
	// PTE edit on the HRT core — the fault fast lane (UserFaultLane).
	fastProtect func(addr, length uint64, writable bool) bool

	// Stats.
	Collections      uint64
	MinorCollections uint64
	MajorCollections uint64
	BarrierFaults    uint64
	SegmentsEver     uint64
	SegmentsFreed    uint64
	MarkedLast       uint64
}

// telemetryScope extracts the telemetry instruments from an OS that
// provides them (the core environments do). The OS interface itself is
// untouched: environments without telemetry yield the zero Scope, whose
// instruments are all no-ops.
func telemetryScope(os OS) telemetry.Scope {
	if ts, ok := os.(interface{ TelemetryScope() telemetry.Scope }); ok {
		return ts.TelemetryScope()
	}
	return telemetry.Scope{}
}

// Segment geometry: 64 KiB segments of 48-byte cells.
const (
	segBytes  = 64 * 1024
	cellBytes = 48
	segCells  = segBytes / cellBytes
	pageBytes = 4096
	gcMinHeap = 8 * segBytes
	// majorEvery is the generational schedule: every Nth collection is a
	// full (major) collection; the others are minor collections that
	// sweep only the young generation, using the write-protection
	// remembered set (dirty old segments) as extra roots.
	majorEvery = 4
	handlerVA  = 0x0000_0000_0041_1000 // where the SIGSEGV handler "lives"
	markCost   = 9                     // cycles per object visited in mark
	sweepCost  = 120                   // cycles per segment in sweep
	allocCost  = 14                    // cycles per cell allocation
)

type segment struct {
	base      uint64
	cells     []*Obj
	arena     []Obj // Go-side cell storage, one block per segment
	protected bool
	old       bool       // promoted by a previous collection
	backend   memBackend // the backend that mapped this segment
	lastPage  uint64     // last heap page touched by the bump allocator
}

// dirty reports whether an old segment has been mutated since it was last
// protected — i.e. it is in the remembered set and may point at young
// objects.
func (s *segment) dirty() bool { return s.old && !s.protected }

func (s *segment) full() bool { return len(s.cells) >= segCells }

// newGC registers the SIGSEGV write-barrier handler and maps the initial
// heap.
func newGC(in *Interp) (*GC, error) {
	g := &GC{
		in:        in,
		backend:   syscallBackend{},
		segments:  make(map[uint64]*segment),
		threshold: gcMinHeap,
	}

	// Register the barrier handler code and install it with
	// rt_sigaction (the startup rt_sigaction traffic of Figure 11).
	in.os.RegisterSignalCode(handlerVA, g.segvHandler)
	res := in.os.Syscall(linuxabi.Call{
		Num:  linuxabi.SysRtSigaction,
		Args: [6]uint64{uint64(linuxabi.SIGSEGV), handlerVA, linuxabi.SAOnStack},
	})
	if !res.Ok() {
		return nil, fmt.Errorf("scheme: installing GC SIGSEGV handler: %v", res.Err)
	}

	// Fault fast lane: when the environment exposes it (an HRT under the
	// incremental merger), write-barrier faults on heap segments resolve
	// HRT-locally instead of crossing to the ROS. The registration is a
	// no-op — and fastProtect stays nil — everywhere else.
	if lane, ok := in.os.(UserFaultLane); ok && lane.RegisterUserFaultHandler(g.akMemFault) {
		g.fastProtect = lane.UserProtect
	}

	// Create the initial heap: generations, nursery, and auxiliary
	// arenas up front — the mmap-dominated heap-creation storm that
	// leads the startup syscall profile (Figure 11).
	for i := 0; i < 16; i++ {
		if _, err := g.newSegment(); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// newSegment maps one fresh segment through the current backend and
// makes it the nursery.
func (g *GC) newSegment() (*segment, error) {
	base, err := g.backend.mmap(g.in, segBytes)
	if err != nil {
		return nil, err
	}
	s := &segment{base: base, cells: make([]*Obj, 0, segCells), backend: g.backend}
	g.segments[s.base] = s
	g.nursery = s
	g.SegmentsEver++
	return s, nil
}

// alloc returns a fresh cell, collecting when the allocation budget is
// spent.
func (g *GC) alloc() *Obj {
	g.in.charge(allocCost)
	if g.allocBytes >= g.threshold {
		g.collectAuto()
	}
	s := g.nursery
	if s == nil || s.full() || s.protected {
		ns, err := g.newSegment()
		if err != nil {
			// Heap exhaustion is fatal to the runtime, as it is in a
			// real interpreter without error recovery at this level.
			panic(err)
		}
		s = ns
	}
	addr := s.base + uint64(len(s.cells))*cellBytes
	// Cells come from a per-segment arena: one Go allocation per segment
	// instead of one per cell. The arena is sized up front and indexed by
	// cell count, so cell pointers never move. Lazy — segments that never
	// become the active nursery (most of the initial heap) pay nothing.
	if s.arena == nil {
		s.arena = make([]Obj, segCells)
	}
	o := &s.arena[len(s.cells)]
	o.Addr = addr
	o.seg = s
	s.cells = append(s.cells, o)
	g.allocBytes += cellBytes

	// First touch of each heap page demand-pages it in (the minor-fault
	// traffic of Figure 10).
	page := addr &^ (pageBytes - 1)
	if page != s.lastPage {
		s.lastPage = page
		if err := g.in.os.Touch(addr, true); err != nil {
			panic(fmt.Sprintf("scheme: heap touch at %#x: %v", addr, err))
		}
	}
	return o
}

// creditBytes accounts payload bytes (strings, vector backing) toward the
// collection budget.
func (g *GC) creditBytes(n int) {
	if n > 0 {
		g.allocBytes += uint64(n)
	}
}

// addRoot registers a permanent root (interned symbols, globals table).
func (g *GC) addRoot(o *Obj) { g.roots = append(g.roots, o) }

// WriteBarrier must be called before mutating a heap object in place
// (set-car!, vector-set!, string-set!). If the object's segment is
// write-protected, the store takes a page fault that the SIGSEGV handler
// resolves by un-protecting the segment.
func (g *GC) WriteBarrier(o *Obj) {
	s := o.seg
	if s == nil || !s.protected {
		return
	}
	if err := g.in.os.Touch(o.Addr, true); err != nil {
		panic(fmt.Sprintf("scheme: write barrier at %#x: %v", o.Addr, err))
	}
}

// segvHandler is the registered SIGSEGV handler: find the segment that
// faulted and un-protect it. ctx.Sys routes its mprotect into the kernel
// context that delivered the signal (natively the faulting thread; under
// Multiverse the ROS partner that replicated the access).
func (g *GC) segvHandler(ctx *ros.SignalContext) {
	g.BarrierFaults++
	telemetryScope(g.in.os).Metrics.Counter("gc.barrier_faults").Inc()
	s := g.segmentOf(ctx.FaultAddr)
	if s == nil || !s.protected {
		// Fault in a region the collector no longer tracks: nothing to
		// fix; the retried access will surface the real failure.
		return
	}
	if _, isAK := s.backend.(*akBackend); isAK {
		// AK-backed segments never reach the ROS SIGSEGV path; their
		// faults resolve in the AeroKernel handler.
		return
	}
	sys := ctx.Sys
	if sys == nil {
		sys = g.in.os.Syscall
	}
	res := sys(linuxabi.Call{
		Num:  linuxabi.SysMprotect,
		Args: [6]uint64{s.base, segBytes, linuxabi.ProtRead | linuxabi.ProtWrite},
	})
	if res.Ok() {
		s.protected = false
	}
}

func (g *GC) segmentOf(addr uint64) *segment {
	base := addr &^ (segBytes - 1)
	if s, ok := g.segments[base]; ok {
		return s
	}
	// Segments are segBytes-sized but mmap may not align them; fall back
	// to a scan.
	for _, s := range g.segments {
		if addr >= s.base && addr < s.base+segBytes {
			return s
		}
	}
	return nil
}

// Collect runs a full (major) mark/sweep collection.
func (g *GC) Collect() { g.collect(false) }

// collectAuto follows the generational schedule.
func (g *GC) collectAuto() {
	minor := g.sinceMajor < majorEvery-1
	g.collect(minor)
}

// collect runs one collection. A minor collection considers only the
// young generation: old segments survive untouched, and the dirty ones —
// those the write barrier un-protected since the last collection — serve
// as additional roots, since only they can point at young objects. This
// is what the mprotect/SIGSEGV discipline is *for*.
func (g *GC) collect(minor bool) {
	g.Collections++
	kind := uint64(0)
	if minor {
		g.MinorCollections++
		g.sinceMajor++
		kind = 1
	} else {
		g.MajorCollections++
		g.sinceMajor = 0
	}
	in := g.in

	// Telemetry: the pause and its phases are spans on the interpreter's
	// execution track. Compute charges are flushed at phase boundaries so
	// the clock reflects each phase's cost; the flushes move no cycles,
	// only push already-accumulated ones, so timing is unchanged.
	scope := telemetryScope(in.os)
	clk := in.os.Clock()
	in.flushCompute()
	start := clk.Now()
	pause := scope.Tracer.Begin(scope.Track, "gc", "gc-pause", start,
		telemetry.Attr{Key: "minor", Val: kind})

	// Mark.
	markSp := scope.Tracer.Begin(scope.Track, "gc", "mark", clk.Now())
	marked := make(map[*Obj]bool)
	frameSeen := make(map[*Frame]bool)
	var mark func(o *Obj)
	var markFrame func(f *Frame)
	mark = func(o *Obj) {
		for o != nil && !marked[o] {
			if o.seg == nil {
				return // immediate
			}
			if minor && o.seg.old && o.seg.protected {
				// Clean old object: it survives by generation and — by
				// the write-barrier invariant — cannot point at young
				// objects. Stop here.
				return
			}
			marked[o] = true
			in.charge(markCost)
			switch o.Kind {
			case KPair:
				mark(o.Car)
				o = o.Cdr
				continue
			case KVector:
				for _, e := range o.Vec {
					mark(e)
				}
			case KClosure:
				for _, p := range o.ext.Params {
					mark(p)
				}
				mark(o.ext.Rest)
				for _, b := range o.ext.Body {
					mark(b)
				}
				markFrame(o.ext.Env)
			}
			return
		}
	}
	markFrame = func(f *Frame) {
		for ; f != nil && !frameSeen[f]; f = f.parent {
			frameSeen[f] = true
			f.each(func(k, v *Obj) {
				mark(k)
				mark(v)
			})
		}
	}
	for _, r := range g.roots {
		mark(r)
	}
	markFrame(in.global)
	if minor {
		// The remembered set: every cell of a dirty old segment may hold
		// the only reference to a young object.
		for _, s := range g.segments {
			if s.dirty() {
				for _, c := range s.cells {
					mark(c)
				}
			}
		}
	}
	g.MarkedLast = uint64(len(marked))
	in.flushCompute()
	markSp.SetAttr("marked", g.MarkedLast)
	markSp.EndAt(clk.Now())

	sweepSp := scope.Tracer.Begin(scope.Track, "gc", "sweep", clk.Now())
	// Sweep: unmap segments with no marked cells; write-protect the
	// survivors (the generational remembered-set discipline); the
	// current nursery stays writable for the bump allocator.
	var dead []*segment
	live := uint64(0)
	for _, s := range g.segments {
		if minor && s.old {
			// Old generation is out of scope for a minor collection.
			continue
		}
		in.charge(sweepCost)
		any := false
		for _, c := range s.cells {
			if marked[c] {
				any = true
				live += cellBytes
			}
		}
		// The nursery stays mapped even when empty of live cells: the
		// bump allocator is still parked in it.
		if !any && len(s.cells) > 0 && s != g.nursery {
			dead = append(dead, s)
		}
	}
	// Deterministic unmap order.
	sort.Slice(dead, func(i, j int) bool { return dead[i].base < dead[j].base })
	for _, s := range dead {
		if s.backend.munmap(in, s.base, segBytes) {
			for _, c := range s.cells {
				c.seg = nil // cells outlive the segment harmlessly
			}
			delete(g.segments, s.base)
			g.SegmentsFreed++
		}
	}
	in.flushCompute()
	sweepSp.SetAttr("freed", uint64(len(dead)))
	sweepSp.EndAt(clk.Now())

	protSp := scope.Tracer.Begin(scope.Track, "gc", "protect", clk.Now())
	// Allocation resumes in a fresh nursery; every surviving segment —
	// including the one that was the nursery — becomes old generation
	// and is write-protected (re-arming the remembered set).
	g.nursery = nil
	for _, s := range g.segments {
		s.old = true
	}
	bases := make([]uint64, 0, len(g.segments))
	for b := range g.segments {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	for _, b := range bases {
		s := g.segments[b]
		if s.protected {
			continue
		}
		if s.backend.protect(in, s.base, segBytes, false) {
			s.protected = true
		}
	}
	if _, err := g.newSegment(); err != nil {
		panic(err)
	}

	protSp.EndAt(clk.Now())

	// Accounting epilogue, as runtimes do after a collection.
	_ = in.Sys(linuxabi.Call{Num: linuxabi.SysGetrusage})

	pause.EndAt(clk.Now())
	scope.Metrics.Counter("gc.collections").Inc()
	if minor {
		scope.Metrics.Counter("gc.collections.minor").Inc()
	} else {
		scope.Metrics.Counter("gc.collections.major").Inc()
	}
	scope.Metrics.LatencyHistogram("gc.pause.latency").Observe(clk.Now() - start)

	g.allocBytes = 0
	if !minor {
		g.liveBytes = live
		next := live * 2
		if next < gcMinHeap {
			next = gcMinHeap
		}
		g.threshold = next
	}
}

// LiveSegments returns the number of mapped segments.
func (g *GC) LiveSegments() int { return len(g.segments) }

// Stats renders a one-line summary.
func (g *GC) Stats() string {
	return fmt.Sprintf("gc: %d collections, %d segments live, %d freed, %d barrier faults",
		g.Collections, len(g.segments), g.SegmentsFreed, g.BarrierFaults)
}
