package scheme

import (
	"fmt"

	"multiverse/internal/linuxabi"
)

// memBackend abstracts how the collector obtains, protects, and returns
// heap segments. The default backend speaks the legacy ABI
// (mmap/mprotect/munmap system calls, SIGSEGV write barriers). The
// AeroKernel backend — available once the runtime notices it is an HRT —
// uses kernel-mode page-table edits instead, the paper's predicted first
// incremental port (section 5).
type memBackend interface {
	mmap(in *Interp, length uint64) (uint64, error)
	munmap(in *Interp, addr, length uint64) bool
	protect(in *Interp, addr, length uint64, writable bool) bool
	name() string
}

// syscallBackend is the legacy path.
type syscallBackend struct{}

func (syscallBackend) name() string { return "syscalls" }

func (syscallBackend) mmap(in *Interp, length uint64) (uint64, error) {
	res := in.Sys(linuxabi.Call{
		Num: linuxabi.SysMmap,
		Args: [6]uint64{
			0, length,
			linuxabi.ProtRead | linuxabi.ProtWrite,
			linuxabi.MapPrivate | linuxabi.MapAnonymous,
		},
	})
	if !res.Ok() {
		return 0, fmt.Errorf("scheme: heap mmap: %v", res.Err)
	}
	return res.Ret, nil
}

func (syscallBackend) munmap(in *Interp, addr, length uint64) bool {
	return in.Sys(linuxabi.Call{Num: linuxabi.SysMunmap, Args: [6]uint64{addr, length}}).Ok()
}

func (syscallBackend) protect(in *Interp, addr, length uint64, writable bool) bool {
	prot := uint64(linuxabi.ProtRead)
	if writable {
		prot |= linuxabi.ProtWrite
	}
	return in.Sys(linuxabi.Call{Num: linuxabi.SysMprotect, Args: [6]uint64{addr, length, prot}}).Ok()
}

// AKMemory is the capability an HRT execution environment exposes for
// kernel-managed memory: direct AeroKernel calls plus registration of a
// kernel-level fault handler for the protection faults the runtime
// arranges on purpose (write barriers).
type AKMemory interface {
	AKCall(symbol string, args ...uint64) (uint64, error)
	RegisterAKMemFaultHandler(h func(addr uint64, write bool) bool)
}

// UserFaultLane is the capability an HRT execution environment exposes
// when the incremental merger is on: protection faults on merged
// lower-half user pages can be resolved HRT-locally by direct PTE edit
// instead of being forwarded to the ROS. RegisterUserFaultHandler reports
// whether the handler was installed; when it declines, the runtime keeps
// the forwarded SIGSEGV path.
type UserFaultLane interface {
	RegisterUserFaultHandler(h func(addr uint64, write bool) bool) bool
	UserProtect(addr, length uint64, writable bool) bool
}

// akBackend edits page tables in the AeroKernel: no event-channel
// crossings, no demand faults (frames are allocated eagerly at map time).
type akBackend struct {
	ak AKMemory
}

func (*akBackend) name() string { return "aerokernel" }

func (b *akBackend) mmap(in *Interp, length uint64) (uint64, error) {
	in.flushCompute()
	addr, err := b.ak.AKCall("nk_mmap", length)
	if err != nil {
		return 0, err
	}
	if addr == ^uint64(0) {
		return 0, fmt.Errorf("scheme: nk_mmap failed")
	}
	return addr, nil
}

func (b *akBackend) munmap(in *Interp, addr, length uint64) bool {
	in.flushCompute()
	ret, err := b.ak.AKCall("nk_munmap", addr, length)
	return err == nil && ret == 0
}

func (b *akBackend) protect(in *Interp, addr, length uint64, writable bool) bool {
	in.flushCompute()
	w := uint64(0)
	if writable {
		w = 1
	}
	ret, err := b.ak.AKCall("nk_mprotect", addr, length, w)
	return err == nil && ret == 0
}

// EnableAKMemory switches the collector's segment management to the
// AeroKernel: new segments come from nk_mmap, protection changes become
// direct PTE edits, and write-barrier faults are resolved by a
// kernel-level handler instead of forwarded SIGSEGVs. This is the
// incremental-porting step the hotspot report points at; it requires an
// HRT environment.
func (e *Engine) EnableAKMemory() error {
	akm, ok := e.in.os.(AKMemory)
	if !ok {
		return fmt.Errorf("scheme: environment offers no AeroKernel memory (not an HRT?)")
	}
	g := e.in.gc
	g.backend = &akBackend{ak: akm}
	akm.RegisterAKMemFaultHandler(g.akMemFault)
	// Move allocation to a kernel-managed nursery immediately.
	if _, err := g.newSegment(); err != nil {
		return err
	}
	return nil
}

// GCBackendName reports which backend currently provides new segments.
func (e *Engine) GCBackendName() string { return e.in.gc.backend.name() }

// akMemFault is the kernel-level write-barrier resolution: un-protect the
// segment by direct PTE edit and let the access retry. It serves both the
// AK-managed region (via RegisterAKMemFaultHandler) and, when the fault
// fast lane is armed, merged lower-half segments owned by the legacy
// backend (via UserFaultLane). Only un-protection happens locally; the
// protect phase of a collection stays on the backend path so the ROS's
// VMA view never disagrees with the PTEs.
func (g *GC) akMemFault(addr uint64, write bool) bool {
	s := g.segmentOf(addr)
	if s == nil || !s.protected {
		return false
	}
	if _, isAK := s.backend.(*akBackend); !isAK {
		if g.fastProtect == nil || !g.fastProtect(s.base, segBytes, true) {
			// Declined: fall back to the forwarded fault path, where the
			// ROS-side SIGSEGV handler un-protects through mprotect.
			return false
		}
		s.protected = false
		g.BarrierFaults++
		return true
	}
	if !s.backend.protect(g.in, s.base, segBytes, true) {
		return false
	}
	s.protected = false
	g.BarrierFaults++
	return true
}
