// Quickstart: hybridize a tiny application and watch it run in kernel
// mode.
//
// The flow is the paper's developer experience end to end: build a fat
// binary with the toolchain, let the Multiverse runtime initialization
// install and boot the embedded AeroKernel through the HVM, merge the
// address spaces, and run main() as a top-level HRT thread whose system
// calls and page faults converge on a ROS partner thread.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"multiverse/internal/core"
	"multiverse/internal/linuxabi"
)

func main() {
	// 1. The toolchain link step: embed the AeroKernel into the app.
	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage("quickstart"),
		AeroKernel: core.NewAeroKernelImage(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Assemble the machine: 2 sockets x 4 cores; ROS on core 0, HRT
	// on core 1.
	sys, err := core.NewSystem(fat, core.Options{Hybrid: true, AppName: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Runtime initialization (normally hidden in the injected init
	// hooks): parse embedded image, install, boot, merge.
	if err := sys.InitRuntime(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AeroKernel booted on cores %v; merged=%v\n", sys.AK.Cores(), sys.AK.Merged())

	// 4. Run "main()" in the HRT (Incremental model). The code below
	// thinks it is an ordinary Linux program.
	code, err := sys.RunMain(func(env core.Env) uint64 {
		pid := env.Syscall(linuxabi.Call{Num: linuxabi.SysGetpid})
		msg := fmt.Sprintf("hello from kernel mode! world=%s pid=%d\n", env.World(), pid.Ret)
		env.Syscall(linuxabi.Call{
			Num:  linuxabi.SysWrite,
			Args: [6]uint64{1, 0, uint64(len(msg))},
			Data: []byte(msg),
		})

		// Touch fresh memory: the page fault forwards to the ROS.
		m := env.Syscall(linuxabi.Call{
			Num:  linuxabi.SysMmap,
			Args: [6]uint64{0, 16 * 4096, linuxabi.ProtRead | linuxabi.ProtWrite, linuxabi.MapPrivate | linuxabi.MapAnonymous},
		})
		for off := uint64(0); off < 16*4096; off += 4096 {
			if err := env.Touch(m.Ret+off, true); err != nil {
				log.Fatal(err)
			}
		}
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program output: %q\n", sys.Proc.Stdout())
	fmt.Printf("exit code %d after %.3f ms of virtual time\n", code, sys.Main.Clock.Now().Nanoseconds()/1e6)
	fmt.Printf("forwarded %d syscalls and %d page faults over the event channel\n",
		sys.AK.ForwardedSyscalls(), sys.AK.ForwardedFaults())
}
