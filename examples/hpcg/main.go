// HPCG on the mini-Legion runtime: the paper's section 2 motivation,
// end to end. A task-parallel runtime runs a conjugate-gradient solve in
// all three worlds; on the ROS its barrier synchronization costs futex
// system calls, while in the HRT it binds to AeroKernel events — the
// specialization that gave the hand-ported Legion its HPCG speedups.
//
// Run: go run ./examples/hpcg
package main

import (
	"fmt"
	"log"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/legion"
	"multiverse/internal/vfs"
)

const (
	n       = 16384
	iters   = 50
	workers = 4
)

func solve(world core.World) *legion.HPCGResult {
	sys, err := bench.NewSystemForWorld(world, vfs.New(), "hpcg")
	if err != nil {
		log.Fatal(err)
	}
	var res *legion.HPCGResult
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		rt, rerr := legion.New(env, workers)
		if rerr != nil {
			log.Fatal(rerr)
		}
		defer rt.Shutdown()
		res, rerr = legion.RunHPCG(rt, env, n, iters)
		if rerr != nil {
			log.Fatal(rerr)
		}
		return 0
	}); err != nil {
		log.Fatal(err)
	}
	if err := legion.VerifySolution(res.X, 1e-5); err != nil {
		log.Fatalf("%s solved wrong: %v", world, err)
	}
	return res
}

func main() {
	fmt.Printf("HPCG: CG n=%d, %d iterations, %d workers\n\n", n, iters, workers)
	base := solve(core.WorldNative)
	for _, world := range []core.World{core.WorldNative, core.WorldVirtual, core.WorldHRT} {
		res := solve(world)
		fmt.Printf("%-11s %8.3f ms  sync=%-17s residual=%.2e  speedup=%.2fx\n",
			world, res.Cycles.Nanoseconds()/1e6, res.SyncBinding, res.Residual,
			float64(base.Cycles)/float64(res.Cycles))
	}
	fmt.Println("\nSame solver, same sync-op count — only the wakeup primitive changed.")
}
