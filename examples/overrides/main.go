// AeroKernel overrides: the developer-facing configuration file, the
// wrappers the toolchain generates from it, and the cost of the
// per-invocation symbol lookup versus the suggested symbol cache.
//
// Run: go run ./examples/overrides
package main

import (
	"fmt"
	"log"

	"multiverse/internal/aerokernel"
	"multiverse/internal/core"
)

// configFile is what an AeroKernel developer adds to the Multiverse
// toolchain: "a simple configuration file ... that specifies the
// function's attributes and argument mappings between the legacy function
// and the AeroKernel variant" (section 4.2).
const configFile = `
# my-runtime overrides
override malloc_stats => nk_sysinfo
override sched_yield  => nk_sched_yield
# swap the argument order on the way through
override sum2         => demo_sum args(1,0)
`

func main() {
	specs, err := core.ParseOverrides([]byte(configFile))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d override specs from the config file\n", len(specs))

	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage("overrides-demo"),
		AeroKernel: core.NewAeroKernelImage(),
		Overrides:  specs,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(fat, core.Options{Hybrid: true, AppName: "overrides-demo"})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InitRuntime(); err != nil {
		log.Fatal(err)
	}

	// The AeroKernel developer's variant for the argument-mapping demo:
	// returns a*10 + b so the mapping order is visible.
	sys.AK.RegisterFunc("demo_sum", func(t *aerokernel.Thread, args []uint64) uint64 {
		return args[0]*10 + args[1]
	})

	_, err = sys.HRTInvokeFunc(func(env core.Env) uint64 {
		hrt := env.(core.HRTExtras)

		// sum2(3, 4) maps through args(1,0) to demo_sum(4, 3) = 43.
		v, err := hrt.OverrideInvoke("sum2", 3, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sum2(3,4) through the wrapper (argument remap) = %d\n", v)

		// Repeated invocation shows the uncached lookup cost.
		clk := env.Clock()
		start := clk.Now()
		for i := 0; i < 100; i++ {
			if _, err := hrt.OverrideInvoke("sched_yield"); err != nil {
				log.Fatal(err)
			}
		}
		uncached := clk.Now() - start
		fmt.Printf("100 uncached override calls: %d cycles (%d-entry symbol table)\n",
			uint64(uncached), sys.AK.SymbolCount())
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}

	// Same wrapper with the symbol cache enabled (the paper's suggested
	// improvement).
	cached := core.NewOverrideSet(specs, true)
	w, _ := cached.Lookup("sched_yield")
	_, err = sys.HRTInvokeFunc(func(env core.Env) uint64 {
		t := envThread(env)
		clk := env.Clock()
		if _, err := w.Invoke(t); err != nil { // warm the cache
			log.Fatal(err)
		}
		start := clk.Now()
		for i := 0; i < 100; i++ {
			if _, err := w.Invoke(t); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("100 cached override calls:   %d cycles\n", uint64(clk.Now()-start))
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}
}

func envThread(env core.Env) *aerokernel.Thread {
	return env.(interface{ HRTThreadForBench() *aerokernel.Thread }).HRTThreadForBench()
}
