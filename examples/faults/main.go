// Fault injection and recovery: kill the ROS partner thread under a
// running HRT program and watch the execution group's watchdog respawn
// it, replay the mirrored-state merge, and redeliver the in-flight
// request — with the program none the wiser.
//
// The scenario in partner-death.json scripts three faults: a partner
// death on the first serviced request, then a dropped notification and a
// corrupted request frame later in the run. The demo runs the same
// program clean and faulted and checks the outputs are byte-identical —
// the recovery correctness property: injection perturbs timing, never
// results.
//
// Run: go run ./examples/faults
//
// The same scenario drives the CLI:
//
//	mvrun -world multiverse -bench fasta -fault-spec examples/faults/partner-death.json -stats
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"multiverse/internal/core"
	"multiverse/internal/faults"
	"multiverse/internal/linuxabi"
)

// workload crosses the boundary often enough for every scripted fault
// to land: a stream of writes, each forwarded to the ROS partner.
func workload(env core.Env) uint64 {
	for i := 0; i < 32; i++ {
		msg := fmt.Sprintf("event %02d survived\n", i)
		env.Syscall(linuxabi.Call{
			Num:  linuxabi.SysWrite,
			Args: [6]uint64{1, 0, uint64(len(msg))},
			Data: []byte(msg),
		})
	}
	return 0
}

func run(plan *faults.Plan) (*core.System, []byte) {
	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage("faults-demo"),
		AeroKernel: core.NewAeroKernelImage(),
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(fat, core.Options{
		Hybrid:  true,
		AppName: "faults-demo",
		Faults:  plan,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InitRuntime(); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RunMain(workload); err != nil {
		log.Fatal(err)
	}
	return sys, []byte(sys.Proc.Stdout())
}

func main() {
	spec, err := os.ReadFile("examples/faults/partner-death.json")
	if err != nil {
		// Allow running from inside the directory too.
		spec, err = os.ReadFile("partner-death.json")
		if err != nil {
			log.Fatal(err)
		}
	}
	scenario, err := faults.ParseSpec(spec)
	if err != nil {
		log.Fatal(err)
	}

	_, cleanOut := run(nil)
	sys, faultedOut := run(&faults.Plan{Seed: 1, Spec: scenario})

	m := sys.Metrics()
	fmt.Printf("scripted faults fired:\n")
	for _, k := range []string{"partner-kill", "drop-notify", "corrupt-frame"} {
		fmt.Printf("  %-14s %d\n", k, m.Counter("faults.injected."+k).Value())
	}
	fmt.Printf("recovery:\n")
	fmt.Printf("  retransmits    %d\n", m.Counter("faults.retransmit").Value())
	fmt.Printf("  respawns       %d\n", m.Counter("faults.recovery").Value())
	fmt.Printf("  latency        %d virtual cycles (death -> partner serving again)\n",
		uint64(m.LatencyHistogram("faults.recovery.latency").Sum()))
	fmt.Printf("  degraded       %d (budget never exhausted)\n", m.Counter("faults.degraded").Value())

	if bytes.Equal(cleanOut, faultedOut) {
		fmt.Printf("\nrecovery property holds: faulted output is byte-identical to clean (%d bytes)\n", len(faultedOut))
	} else {
		fmt.Printf("\nRECOVERY PROPERTY VIOLATED: outputs diverge\nclean:\n%s\nfaulted:\n%s\n", cleanOut, faultedOut)
		os.Exit(1)
	}
}
