// Places: Racket-style message-passing parallelism from unmodified Scheme
// source, in all three worlds. Under Multiverse each (place-spawn ...)
// becomes its own execution group — a fresh interpreter instance running
// as a top-level HRT thread with its own ROS partner — created through
// the pthread_create override, exactly like any legacy thread.
//
// Run: go run ./examples/places
package main

import (
	"fmt"
	"log"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/places"
	"multiverse/internal/scheme"
	"multiverse/internal/vfs"
)

// The program splits a sum across two places and combines the results —
// it has no idea whether the places are Linux threads or HRT threads.
const program = `
(define (spawn-range lo hi)
  (place-spawn
    (string-append
      "(define (sum i acc) (if (= i " (number->string hi) ") acc"
      " (sum (+ i 1) (+ acc i)))) (sum " (number->string lo) " 0)")))

(define left  (spawn-range 0 50000))
(define right (spawn-range 50000 100000))
(define total (+ (place-wait left) (place-wait right)))
(display "sum of [0,100000) = ") (display total) (newline)
(display (if (running-as-hrt?) "computed by kernel-mode places" "computed by user-level places"))
(newline)
`

func run(world core.World) {
	fs := vfs.New()
	if err := scheme.InstallPrelude(fs); err != nil {
		log.Fatal(err)
	}
	sys, err := bench.NewSystemForWorld(world, fs, "places-demo")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := places.NewEngine(env)
		if eerr != nil {
			log.Fatal(eerr)
		}
		if _, eerr := eng.RunString(program); eerr != nil {
			log.Fatal(eerr)
		}
		eng.Shutdown()
		return 0
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- %s ---\n%s", world, sys.Proc.Stdout())
	if sys.AK != nil {
		fmt.Printf("(3 execution groups total: main + 2 places; %d syscalls forwarded)\n",
			sys.AK.ForwardedSyscalls())
	}
	fmt.Println()
}

func main() {
	run(core.WorldNative)
	run(core.WorldHRT)
}
