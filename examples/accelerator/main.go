// Accelerator model (paper Figures 4 and 5): code explicitly mixes legacy
// Linux functionality with AeroKernel functionality.
//
// The routine invoked with hrt_invoke_func() calls an AeroKernel function
// directly (possible because it already executes in the HRT), then uses
// printf — which works because of the merged address space (the function
// linkage) and the event channel (the underlying write(2) forwards to the
// ROS).
//
// The second half repeats the exercise via AeroKernel overrides: the same
// routine runs through pthread_create, interposed to nk_thread_create by
// the generated wrapper (Figure 5).
//
// Run: go run ./examples/accelerator
package main

import (
	"fmt"
	"log"

	"multiverse/internal/core"
	"multiverse/internal/linuxabi"
)

// routine is the paper's example body:
//
//	void *ret = aerokernel_func();
//	printf("Result = %d\n", ret);
func routine(env core.Env) uint64 {
	hrt := env.(core.HRTExtras)
	ret, err := hrt.AKCall("nk_sysinfo")
	if err != nil {
		log.Fatal(err)
	}
	msg := fmt.Sprintf("Result = %d\n", ret)
	env.Syscall(linuxabi.Call{
		Num:  linuxabi.SysWrite,
		Args: [6]uint64{1, 0, uint64(len(msg))},
		Data: []byte(msg),
	})
	return ret
}

func main() {
	fat, err := core.Build(core.BuildInput{
		App:        core.NewAppImage("accelerator"),
		AeroKernel: core.NewAeroKernelImage(),
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(fat, core.Options{Hybrid: true, AppName: "accelerator"})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.InitRuntime(); err != nil {
		log.Fatal(err)
	}

	// Figure 4: hrt_invoke_func(routine).
	ret, err := sys.HRTInvokeFunc(routine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hrt_invoke_func returned %d\n", ret)

	// Figure 5: the same routine through the pthread_create override.
	_, err = sys.RunMain(func(env core.Env) uint64 {
		join, err := env.PthreadCreate(func(child core.Env) { routine(child) })
		if err != nil {
			log.Fatal(err)
		}
		join()
		return 0
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("program output:\n%s", sys.Proc.Stdout())
	w, _ := sys.Overrides.Lookup("pthread_create")
	inv, lookups := w.Stats()
	fmt.Printf("pthread_create wrapper: %d invocations, %d symbol lookups\n", inv, lookups)
}
