// Incremental model: take the whole unmodified Racket-stand-in runtime —
// reader, evaluator, mprotect/SIGSEGV-driven garbage collector,
// cooperative-thread timer — and run it as a kernel with zero porting
// effort, then run the identical program natively and compare.
//
// This is the paper's headline demonstration: "all of the Racket runtime
// except Linux kernel ABI interactions is seamlessly running as a kernel."
//
// Run: go run ./examples/incremental
package main

import (
	"fmt"
	"log"

	"multiverse/internal/bench"
	"multiverse/internal/core"
	"multiverse/internal/scheme"
	"multiverse/internal/vfs"
)

const program = `
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(display "fib(17) = ")
(display (fib 17))
(newline)

; allocate enough to run the collector and its write barriers
(define keep (make-vector 5000 0))
(collect-garbage)
(let loop ((i 0))
  (when (< i 5000)
    (vector-set! keep i (* i i))
    (loop (+ i 1))))
(display "sum of middle squares: ")
(display (+ (vector-ref keep 2499) (vector-ref keep 2500)))
(newline)
`

func runWorld(world core.World, akMemory bool) {
	fs := vfs.New()
	if err := scheme.InstallPrelude(fs); err != nil {
		log.Fatal(err)
	}
	sys, err := bench.NewSystemForWorld(world, fs, "incremental")
	if err != nil {
		log.Fatal(err)
	}
	var gcs, barriers uint64
	var backend string
	if _, err := sys.RunMain(func(env core.Env) uint64 {
		eng, eerr := scheme.NewEngine(env)
		if eerr != nil {
			log.Fatal(eerr)
		}
		if akMemory {
			if eerr := eng.EnableAKMemory(); eerr != nil {
				log.Fatal(eerr)
			}
		}
		if _, eerr := eng.RunString(program); eerr != nil {
			log.Fatal(eerr)
		}
		gcs = eng.Interp().GC().Collections
		barriers = eng.Interp().GC().BarrierFaults
		backend = eng.GCBackendName()
		eng.Shutdown()
		return 0
	}); err != nil {
		log.Fatal(err)
	}

	st := sys.Proc.Stats()
	label := world.String()
	if akMemory {
		label += " + AK memory port"
	}
	fmt.Printf("--- %s ---\n%s", label, sys.Proc.Stdout())
	fmt.Printf("virtual time %.3f ms | %d syscalls | %d faults | %d GCs | %d barrier faults | gc backend: %s\n",
		sys.Main.Clock.Now().Nanoseconds()/1e6, st.TotalSyscalls(),
		st.MinorFaults+st.MajorFaults, gcs, barriers, backend)
	if sys.AK != nil {
		fmt.Printf("ran as a kernel: forwarded %d syscalls + %d faults; %d address-space merges\n",
			sys.AK.ForwardedSyscalls(), sys.AK.ForwardedFaults(), sys.AK.MergeCount())
		fmt.Print(sys.Hotspots().Report())
	}
	fmt.Println()
}

func main() {
	// Identical program, identical runtime, three hosting worlds. The
	// user-visible behaviour must be byte-for-byte the same. The fourth
	// run shows the incremental path: the GC's memory management ported
	// into the AeroKernel.
	runWorld(core.WorldNative, false)
	runWorld(core.WorldVirtual, false)
	runWorld(core.WorldHRT, false)
	runWorld(core.WorldHRT, true)
}
